package mpiio

import (
	"errors"
	"testing"

	"repro/internal/mpi"
	"repro/internal/pfs"
)

// Before the invariant lint suite (PR 9), mpiio's own validation errors —
// out-of-range reads, undersized caller buffers, invalid datatypes — were
// bare fmt.Errorf values. pfs.Classify treats unclassified errors as
// permanent, so behavior was right by accident: a new retry/degrade site
// calling errors.Is(err, pfs.ErrPermanent) would silently miss them. The
// errclass analyzer now forces every error in this package to wrap a
// sentinel; these tests pin the classification so it cannot regress.

func TestValidationErrorsClassifiedPermanent(t *testing.T) {
	st := pfs.NewMemStore()
	makeTestFile(t, st, "f", 64)
	mpi.RunReal(1, func(c *mpi.Comm) {
		f, _ := Open(c, st, "f")

		_, err := f.ReadContig(60, 10)
		if !errors.Is(err, pfs.ErrPermanent) {
			t.Errorf("ReadContig beyond EOF: err = %v, want pfs.ErrPermanent", err)
		}
		if err := f.ReadContigInto(-1, make([]byte, 4)); !errors.Is(err, pfs.ErrPermanent) {
			t.Errorf("ReadContigInto negative offset: err = %v, want pfs.ErrPermanent", err)
		}

		f.SetView(0, IndexedBlock{Blocklen: 1, Displs: []int64{100}, ElemSize: 8})
		if _, err := f.Read(); !errors.Is(err, pfs.ErrPermanent) {
			t.Errorf("view beyond EOF: err = %v, want pfs.ErrPermanent", err)
		}

		g, _ := Open(c, st, "f")
		g.SetView(0, IndexedBlock{Blocklen: 1, Displs: []int64{0, 1}, ElemSize: 8})
		if _, err := g.ReadInto(make([]byte, 1)); !errors.Is(err, pfs.ErrPermanent) {
			t.Errorf("undersized ReadInto buffer: err = %v, want pfs.ErrPermanent", err)
		}
		if _, err := g.ReadAllInto(0, make([]byte, 1)); !errors.Is(err, pfs.ErrPermanent) {
			t.Errorf("undersized ReadAllInto buffer: err = %v, want pfs.ErrPermanent", err)
		}
	})
}

func TestInvalidSegmentClassifiedPermanent(t *testing.T) {
	st := pfs.NewMemStore()
	makeTestFile(t, st, "f", 64)
	mpi.RunReal(1, func(c *mpi.Comm) {
		f, _ := Open(c, st, "f")
		f.SetView(0, IndexedBlock{Blocklen: 1, Displs: []int64{-1}, ElemSize: 8})
		if _, err := f.Read(); !errors.Is(err, pfs.ErrPermanent) {
			t.Errorf("invalid segment: err = %v, want pfs.ErrPermanent", err)
		}
	})
}
