package mpiio

// Epoch-scoped staging for the collective two-phase read (PR 5). The
// per-call ReadAllInto of PR 4 still allocated its aggregated physical-read
// buffer and shuffle pieces every collective round, because the pieces'
// lifetime crosses rank boundaries: a receiver may still be assembling a
// sender's pieces after the sender's call returned. CollectiveScratch
// retires that allocation with two mechanisms layered on the collective's
// own synchronization:
//
//   - The metadata exchange that starts every round is the epoch boundary.
//     Its completion on any rank proves every rank has *entered* the
//     current round, hence fully *completed* the previous one — so buffers
//     that were only referenced during the previous round (the packed
//     physical-read buffer, the per-destination piece slices, the segment
//     metadata) are dead everywhere and safe to reuse. The exchange is a
//     message-for-message replica of the mpi.Comm.Allgather the per-call
//     path used (gather to rank 0, binomial broadcast), so MsgsSent /
//     BytesSent / MsgsRecv / BytesRecv accounting is bit-identical.
//
//   - Piece release is additionally acknowledged through the exchange
//     itself: the pieces shipped to each destination travel as a pooled
//     *pieceBatch whose receiver releases it after assembling, returning
//     the whole epoch record to the sender's free list once every batch
//     (and the sender's own reference) is back. A consumer that does NOT
//     release — a batch consumer holding pieces across rounds — simply
//     keeps that epoch record out of the free list, so the next round
//     falls back to a fresh record (the pre-epoch per-call behavior) and
//     the held pieces stay intact. This mirrors core.FrameRing's
//     copy-out-or-release contract.
//
// See docs/ownership.md for the repository-wide buffer-ownership
// conventions this design follows.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/pool"
)

// metaTagBase is the tag space of the epoch path's metadata exchange (two
// tags per collective round: gather, then broadcast). It sits above the
// shuffle tag space (collTagBase) and below the mpi collective namespace.
const metaTagBase = 1 << 22

// physRun records where one physical sieve run of the aggregated range
// landed in the epoch's packed buffer.
type physRun struct {
	off, base, len int64
}

// metaPayload is the wire form of one rank's view metadata during the
// gather half of the epoch boundary: the rank's absolute view segments,
// shipped by reference. The slice aliases the sender's cached view
// segments, which are stable for the duration of the round; rank 0 copies
// the slice header into its metaTable before broadcasting, so the payload
// struct itself is only read during the gather.
type metaPayload struct {
	segs []Segment
}

// metaTable is the broadcast result of the epoch boundary: every rank's
// view segments, indexed by rank. Rank 0 owns two tables and ping-pongs
// between rounds — a table is read by the other ranks until they finish
// the round it was built for, which is strictly before rank 0 gathers two
// rounds later.
type metaTable struct {
	all [][]Segment
}

// pieceBatch is the pooled wire form of the pieces one rank ships one
// destination during the shuffle phase. The piece data alias the sending
// epoch's packed buffer; the receiver must release the batch after
// assembling (copying) the pieces, which is the acknowledgment the
// sender's epoch recycling waits for.
type pieceBatch struct {
	ep *collEpoch
	ps []piece
}

// release returns the batch's reference on its epoch. Safe to call from
// the receiving rank's goroutine; the batch and its pieces must not be
// touched afterwards.
func (b *pieceBatch) release() { b.ep.release() }

// collEpoch is one collective round's cross-rank staging: the packed
// physical-read buffer every shuffled piece aliases, and the pooled
// per-destination batches. It is reference-counted — one reference per
// batch actually sent plus one for the owning call — and returns to its
// scratch's free list when the count reaches zero.
type collEpoch struct {
	owner   *CollectiveScratch
	packed  []byte
	batches []pieceBatch
	refs    atomic.Int32
}

// release drops one reference, recycling the epoch when none remain.
func (ep *collEpoch) release() {
	if ep.refs.Add(-1) == 0 {
		s := ep.owner
		s.mu.Lock()
		s.free = append(s.free, ep)
		s.mu.Unlock()
	}
}

// CollectiveScratch holds one file handle's reusable collective-read
// staging: the epoch records (packed read buffer + shuffle batches), the
// metadata exchange payloads, and the per-call working slices. A scratch
// belongs to one rank's file handle and is not concurrency-safe — at most
// one collective may be in flight per scratch; only the batch/epoch
// releases arriving from receiving ranks may touch it concurrently (they
// are confined to the mutex-guarded free list).
//
// Buffer ownership follows docs/ownership.md: ReadAllInto's result aliases
// the caller's dst; the pieces shipped to other ranks are released by
// their consumer; and the epoch boundary (the metadata exchange) is what
// makes single-buffered reuse of everything else safe.
type CollectiveScratch struct {
	meta   metaPayload  // this rank's gather payload
	tables [2]metaTable // rank 0's ping-pong gather tables
	flip   int

	mu   sync.Mutex
	free []*collEpoch // epochs with no outstanding references

	clipped []Segment // aggregated-range clip of every rank's segments
	plan    []Segment // sieve plan over the clipped union
	runs    []physRun // where each plan entry landed in the packed buffer

	// holdBatch, when set (tests only), simulates a non-releasing batch
	// consumer: a received batch for which it returns true is kept instead
	// of released, pinning its epoch out of the free list.
	holdBatch func(*pieceBatch) bool
}

// collective returns the handle's lazily created collective scratch. The
// scratch survives Reopen — like the handle's other steady-state buffers,
// it describes the handle, not the object.
func (f *File) collective() *CollectiveScratch {
	if f.coll == nil {
		f.coll = &CollectiveScratch{}
	}
	return f.coll
}

// acquireEpoch takes an epoch record with no outstanding references from
// the free list, or builds a fresh one when none is available — the first
// rounds, and the fallback when a batch consumer still holds pieces of a
// previous epoch. The record starts with the single reference owned by the
// calling round.
func (s *CollectiveScratch) acquireEpoch(n int) *collEpoch {
	s.mu.Lock()
	var ep *collEpoch
	if k := len(s.free); k > 0 {
		ep = s.free[k-1]
		s.free = s.free[:k-1]
	}
	s.mu.Unlock()
	if ep == nil {
		ep = &collEpoch{owner: s}
	}
	if cap(ep.batches) < n {
		ep.batches = make([]pieceBatch, n)
	}
	ep.batches = ep.batches[:n]
	for i := range ep.batches {
		ep.batches[i].ep = ep
		ep.batches[i].ps = ep.batches[i].ps[:0]
	}
	ep.refs.Store(1)
	return ep
}

// exchangeMeta runs the epoch boundary: an accounting-identical replica of
// the Allgather the per-call path used (gather every rank's view segments
// to rank 0, broadcast the table down a binomial tree). When it returns,
// every rank of the communicator has entered the current round — the
// guarantee that makes reusing the previous round's staging safe. The
// returned per-rank segment table is shared read-only by all ranks until
// the end of the round.
func (s *CollectiveScratch) exchangeMeta(c *mpi.Comm, seq int, mySegs []Segment) [][]Segment {
	tagG := metaTagBase + 2*seq
	tagB := tagG + 1
	metaBytes := int64(16 * len(mySegs))
	if c.Rank() != 0 {
		s.meta.segs = mySegs
		c.Send(0, tagG, metaBytes, &s.meta)
		m := c.Recv(mpi.AnySource, tagB)
		tbl := m.Data.(*metaTable)
		// Forward down the binomial tree exactly as mpi.Comm.Bcast does.
		for k := 1; k < c.Size(); k <<= 1 {
			if c.Rank() < k && c.Rank()+k < c.Size() {
				c.Send(c.Rank()+k, tagB, m.Bytes, tbl)
			}
		}
		return tbl.all
	}
	tbl := &s.tables[s.flip]
	s.flip ^= 1
	tbl.all = pool.Grow(tbl.all, c.Size())
	tbl.all[0] = mySegs
	for i := 0; i < c.Size()-1; i++ {
		m := c.Recv(mpi.AnySource, tagG)
		tbl.all[m.Src] = m.Data.(*metaPayload).segs
	}
	bytes := metaBytes * int64(c.Size())
	for k := 1; k < c.Size(); k <<= 1 {
		c.Send(k, tagB, bytes, tbl)
	}
	return tbl.all
}

// assemblePiece copies one piece into its packed position within dst
// (prefix holds the packed start of each view segment) and returns the
// piece length, or -1 when the piece matches no view segment.
func assemblePiece(dst []byte, mySegs []Segment, prefix []int64, pc piece) int64 {
	si := findSegIdx(mySegs, pc.Off)
	if si < 0 {
		return -1
	}
	copy(dst[prefix[si]+pc.Off-mySegs[si].Off:], pc.Data)
	return int64(len(pc.Data))
}

// lookupRun returns the packed-buffer bytes of file range [off, off+n),
// which must fall inside one physical run.
func lookupRun(runs []physRun, packed []byte, off, n int64) []byte {
	for _, r := range runs {
		if off >= r.off && off+n <= r.off+r.len {
			return packed[r.base+off-r.off : r.base+off-r.off+n]
		}
	}
	panic("mpiio: two-phase lookup miss")
}

// ReadAllInto is ReadAll assembling the packed view bytes into dst (which
// must hold ViewSize bytes) and returning the byte count. The result is
// the caller's dst; no internal buffer aliases it after the call.
//
// The two-phase internals stage the aggregated physical reads and the
// cross-rank shuffle pieces in the handle's CollectiveScratch, scoped by
// epoch: each round's metadata exchange doubles as the epoch boundary
// (when it completes, every rank has finished the previous round), and the
// shipped piece batches are additionally released by their receivers, so a
// steady-state collective read allocates nothing on any rank while
// PhysReads/PhysBytes/UsefulBytes/ShuffleBytes and the communicator's
// message accounting stay bit-identical to the retained per-call path.
//
// Every rank of the communicator must call the collective in the same
// order, and consecutive collectives on one communicator must use distinct
// seq values (tags are derived from seq).
//
// Failure domain (docs/faults.md): a failed physical read never aborts the
// collective mid-round — that would strand peers in the shuffle Recv. The
// round runs to structural completion with the failed run zero-filled, and
// the error surfaces only on the failing rank, after the round. Callers
// must not re-issue a completed collective from one rank alone (the peers
// have moved on); recovery above this layer means degrading, and transient
// faults are expected to be healed *below* it (pfs.RetryStore).
//
//repro:allocfree
func (f *File) ReadAllInto(seq int, dst []byte) (int, error) {
	c := f.c
	s := f.collective() //repro:allow allocfree: lazy scratch init, first collective only
	mySegs, err := f.segs()
	if err != nil {
		return 0, err
	}
	var useful int64
	for _, sg := range mySegs {
		useful += sg.Len
	}
	if int64(len(dst)) < useful {
		return 0, fmt.Errorf("mpiio: ReadAllInto buffer holds %d of %d view bytes: %w", len(dst), useful, pfs.ErrPermanent)
	}
	// Phase 0: exchange request metadata — the epoch boundary.
	all := s.exchangeMeta(c, seq, mySegs)
	lo, hi := int64(-1), int64(-1)
	for _, rs := range all {
		for _, sg := range rs {
			if lo < 0 || sg.Off < lo {
				lo = sg.Off
			}
			if e := sg.Off + sg.Len; e > hi {
				hi = e
			}
		}
	}
	if lo < 0 { // nobody wants anything
		return 0, nil
	}
	tag := collTagBase + seq
	// Phase 1: this rank aggregates the file range [myLo, myHi).
	span := hi - lo
	m := int64(c.Size())
	myLo := lo + span*int64(c.Rank())/m
	myHi := lo + span*int64(c.Rank()+1)/m
	s.clipped = s.clipped[:0]
	for _, rs := range all {
		for _, sg := range rs {
			if cl := clip(sg, myLo, myHi); cl.Len > 0 {
				s.clipped = append(s.clipped, cl)
			}
		}
	}
	s.clipped = Coalesce(s.clipped)
	s.plan = planSieveInto(s.plan[:0], s.clipped, f.SieveGap)
	var total int64
	for _, p := range s.plan {
		total += p.Len
	}
	// The packed buffer and the per-destination batches belong to the
	// epoch: pieces shipped to other ranks alias them until released.
	ep := s.acquireEpoch(c.Size())
	ep.packed = pool.Grow(ep.packed, int(total)) //repro:allow allocfree: amortized epoch-buffer growth
	packed := ep.packed[:total]
	s.runs = s.runs[:0]
	base := int64(0)
	var readErr error
	for _, p := range s.plan {
		buf := packed[base : base+p.Len]
		if err := f.st.ReadAt(f.c, f.name, p.Off, buf); err != nil {
			// A failed physical read MUST NOT abort the collective here:
			// returning before the shuffle sends would leave every peer
			// blocked in Recv forever. Zero-fill the run, run the round to
			// structural completion, and surface the first error afterwards.
			// Peers receive the zero-filled pieces without an error signal —
			// only downstream validation can catch them (docs/faults.md).
			if readErr == nil {
				readErr = fmt.Errorf("mpiio: collective read of %q run [%d,%d): %w", f.name, p.Off, p.Off+p.Len, err)
			}
			clear(buf)
		} else {
			f.PhysReads++
			f.PhysBytes += p.Len
		}
		s.runs = append(s.runs, physRun{p.Off, base, p.Len})
		base += p.Len
	}
	// Phase 2: send every rank the pieces of its view that fall in my
	// range (own pieces are assembled locally from the runs).
	for dr := 0; dr < c.Size(); dr++ {
		if dr == c.Rank() {
			continue
		}
		b := &ep.batches[dr]
		var bytes int64
		for _, sg := range all[dr] {
			if cl := clip(sg, myLo, myHi); cl.Len > 0 {
				b.ps = append(b.ps, piece{Off: cl.Off, Data: lookupRun(s.runs, packed, cl.Off, cl.Len)})
				bytes += cl.Len
			}
		}
		ep.refs.Add(1)
		c.Send(dr, tag, bytes, b)
		if len(b.ps) > 0 {
			f.ShuffleBytes += bytes
			f.ShuffleMsgs++
		}
	}
	// Assemble into packed view order: prefix sums give each (sorted)
	// segment's packed position; own pieces come straight from the runs,
	// received batches are copied and released.
	if cap(f.prefix) < len(mySegs)+1 {
		f.prefix = make([]int64, len(mySegs)+1) //repro:allow allocfree: amortized growth, guarded by cap check
	}
	prefix := f.prefix[:len(mySegs)+1]
	prefix[0] = 0
	for i, sg := range mySegs {
		prefix[i+1] = prefix[i] + sg.Len
	}
	filled := int64(0)
	for _, sg := range mySegs {
		if cl := clip(sg, myLo, myHi); cl.Len > 0 {
			n := assemblePiece(dst, mySegs, prefix, piece{Off: cl.Off, Data: lookupRun(s.runs, packed, cl.Off, cl.Len)})
			if n < 0 {
				ep.release()
				return 0, fmt.Errorf("mpiio: received stray piece at %d: %w", cl.Off, pfs.ErrPermanent)
			}
			filled += n
		}
	}
	var recvErr error
	for sr := 0; sr < c.Size(); sr++ {
		if sr == c.Rank() {
			continue
		}
		msg := c.Recv(sr, tag)
		b, ok := msg.Data.(*pieceBatch)
		if !ok || b == nil {
			if msg.Data != nil && recvErr == nil {
				recvErr = fmt.Errorf("mpiio: collective shuffle got unexpected payload %T from rank %d: %w", msg.Data, sr, pfs.ErrPermanent)
			}
			continue
		}
		for _, pc := range b.ps {
			if n := assemblePiece(dst, mySegs, prefix, pc); n < 0 {
				if recvErr == nil {
					recvErr = fmt.Errorf("mpiio: received stray piece at %d: %w", pc.Off, pfs.ErrPermanent)
				}
			} else {
				filled += n
			}
		}
		if s.holdBatch == nil || !s.holdBatch(b) {
			b.release()
		}
	}
	ep.release()
	if readErr != nil {
		return 0, readErr
	}
	if recvErr != nil {
		return 0, recvErr
	}
	if filled != useful {
		return 0, fmt.Errorf("mpiio: two-phase assembled %d of %d bytes: %w", filled, useful, pfs.ErrPermanent)
	}
	f.UsefulBytes += useful
	return int(useful), nil
}
