package mpiio

// Wire codecs for the collective-read payloads, so the two-phase shuffle
// and its epoch-boundary metadata exchange run unchanged over the
// network transport (mpi.RunNet / mpi.Join).
//
// Ownership across the wire follows docs/ownership.md "Serialization
// boundary":
//
//   - A *pieceBatch is encoded and then released on the sender — the
//     transport is the sending side's consumer, dropping the epoch
//     reference the shuffle added for it — and decoded into a
//     receiver-owned batch whose pieces alias a pooled epoch buffer from
//     this process's netCollScratch, so the receiver's usual release
//     recycles it and the steady-state shuffle stays allocation-free on
//     both sides.
//   - Metadata payloads (*metaPayload, *metaTable, []Segment) are
//     retained by the receiver for the rest of the round with no release
//     signal, so they decode into fresh allocations; they are a few
//     dozen bytes per rank and per round.

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/pool"
)

// Codec IDs 32–47 are reserved for internal/mpiio (see internal/mpi/codec.go).
const (
	codecSegments   mpi.CodecID = 32
	codecMetaPld    mpi.CodecID = 33
	codecMetaTable  mpi.CodecID = 34
	codecPieces     mpi.CodecID = 35
	codecPieceBatch mpi.CodecID = 36
)

// netCollScratch hosts the epochs backing net-decoded piece batches: each
// decoded batch gets a single-batch epoch whose packed buffer holds the
// copied piece bytes, and the receiver's release returns it here for the
// next decode to reuse.
var netCollScratch CollectiveScratch

func init() {
	mpi.RegisterCodec(codecSegments, []Segment(nil), mpi.Codec{Encode: encodeSegments, Decode: decodeSegments})
	mpi.RegisterCodec(codecMetaPld, (*metaPayload)(nil), mpi.Codec{
		Encode: func(buf []byte, v any) ([]byte, error) {
			// The struct is the sender's reusable scratch; Send completes
			// synchronously after encoding, so nothing is released here.
			return appendSegments(buf, v.(*metaPayload).segs), nil
		},
		Decode: func(wire []byte) (any, error) {
			segs, err := decodeSegments(wire)
			if err != nil {
				return nil, err
			}
			return &metaPayload{segs: segs.([]Segment)}, nil
		},
	})
	mpi.RegisterCodec(codecMetaTable, (*metaTable)(nil), mpi.Codec{Encode: encodeMetaTable, Decode: decodeMetaTable})
	mpi.RegisterCodec(codecPieces, []piece(nil), mpi.Codec{
		Encode: func(buf []byte, v any) ([]byte, error) {
			return appendPieces(buf, v.([]piece)), nil
		},
		Decode: func(wire []byte) (any, error) {
			// Legacy per-call path: fresh slices, like the rest of that path.
			r := mpi.NewWireReader(wire)
			n := r.Len(12)
			ps := make([]piece, 0, n)
			for i := 0; i < n; i++ {
				off := r.I64()
				data := r.Bytes(int(r.U32()))
				ps = append(ps, piece{Off: off, Data: append([]byte(nil), data...)})
			}
			if err := r.Done(); err != nil {
				return nil, err
			}
			return ps, nil
		},
	})
	mpi.RegisterCodec(codecPieceBatch, (*pieceBatch)(nil), mpi.Codec{Encode: encodePieceBatch, Decode: decodePieceBatch})
}

func appendSegments(buf []byte, segs []Segment) []byte {
	buf = mpi.AppendU32(buf, uint32(len(segs)))
	for _, sg := range segs {
		buf = mpi.AppendU64(buf, uint64(sg.Off))
		buf = mpi.AppendU64(buf, uint64(sg.Len))
	}
	return buf
}

func encodeSegments(buf []byte, v any) ([]byte, error) {
	return appendSegments(buf, v.([]Segment)), nil
}

func decodeSegments(wire []byte) (any, error) {
	r := mpi.NewWireReader(wire)
	segs, err := readSegments(&r)
	if err != nil {
		return nil, err
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return segs, nil
}

func readSegments(r *mpi.WireReader) ([]Segment, error) {
	n := r.Len(16)
	segs := make([]Segment, 0, n)
	for i := 0; i < n; i++ {
		segs = append(segs, Segment{Off: r.I64(), Len: r.I64()})
	}
	return segs, r.Err()
}

func encodeMetaTable(buf []byte, v any) ([]byte, error) {
	all := v.(*metaTable).all
	buf = mpi.AppendU32(buf, uint32(len(all)))
	for _, segs := range all {
		buf = appendSegments(buf, segs)
	}
	return buf, nil
}

func decodeMetaTable(wire []byte) (any, error) {
	r := mpi.NewWireReader(wire)
	n := r.Len(4)
	t := &metaTable{all: make([][]Segment, n)}
	for i := 0; i < n; i++ {
		segs, err := readSegments(&r)
		if err != nil {
			return nil, err
		}
		t.all[i] = segs
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return t, nil
}

func appendPieces(buf []byte, ps []piece) []byte {
	buf = mpi.AppendU32(buf, uint32(len(ps)))
	for _, pc := range ps {
		buf = mpi.AppendU64(buf, uint64(pc.Off))
		buf = mpi.AppendU32(buf, uint32(len(pc.Data)))
		buf = append(buf, pc.Data...)
	}
	return buf
}

func encodePieceBatch(buf []byte, v any) ([]byte, error) {
	b := v.(*pieceBatch)
	buf = appendPieces(buf, b.ps)
	// The transport is this batch's consumer on the sending side: drop
	// the epoch reference the shuffle added for it, exactly as the
	// receiving rank's release would have under an in-process transport.
	b.release()
	return buf, nil
}

func decodePieceBatch(wire []byte) (any, error) {
	// First pass sizes the packed slab (piece data must not alias the
	// reused wire buffer), validating as it goes.
	sizer := mpi.NewWireReader(wire)
	n := sizer.Len(12)
	total := 0
	for i := 0; i < n; i++ {
		sizer.I64()
		total += len(sizer.Bytes(int(sizer.U32())))
	}
	if err := sizer.Done(); err != nil {
		return nil, fmt.Errorf("mpiio: piece batch: %w", err)
	}
	// Second pass copies the pieces into a pooled single-batch epoch;
	// the receiver's usual release recycles it for the next decode.
	ep := netCollScratch.acquireEpoch(1)
	b := &ep.batches[0]
	ep.packed = pool.Grow(ep.packed, total)
	packed := ep.packed[:0]
	r := mpi.NewWireReader(wire)
	r.Len(12)
	for i := 0; i < n; i++ {
		off := r.I64()
		data := r.Bytes(int(r.U32()))
		start := len(packed)
		packed = append(packed, data...)
		b.ps = append(b.ps, piece{Off: off, Data: packed[start:len(packed):len(packed)]})
	}
	return b, nil
}
