// Package mpiio implements the MPI-IO subset the paper's input processors
// rely on (Section 5.3): derived datatypes built with
// MPI_TYPE_CREATE_INDEXED_BLOCK, file views set with MPI_FILE_SET_VIEW,
// collective reads (MPI_FILE_READ_ALL, realized as two-phase I/O), and
// independent reads with data sieving for noncontiguous patterns.
package mpiio

import (
	"fmt"
	"slices"

	"repro/internal/pfs"
)

// Segment is a contiguous byte range of a file.
type Segment struct {
	Off, Len int64
}

// Datatype describes a (possibly noncontiguous) read pattern as byte
// segments relative to the view displacement.
type Datatype interface {
	// Segments returns the byte ranges covered by the type, relative to
	// offset zero, sorted and non-overlapping.
	Segments() []Segment
	// AppendSegments appends the same ranges to dst and returns it — the
	// allocation-free form File reuses across reads of an unchanged view.
	AppendSegments(dst []Segment) []Segment
	// Size returns the number of useful bytes (sum of segment lengths).
	Size() int64
}

// Contig is n contiguous elements of elemSize bytes.
type Contig struct {
	N        int
	ElemSize int64
}

// Segments implements Datatype.
func (c Contig) Segments() []Segment {
	if c.N <= 0 {
		return nil
	}
	return []Segment{{0, int64(c.N) * c.ElemSize}}
}

// AppendSegments implements Datatype.
func (c Contig) AppendSegments(dst []Segment) []Segment {
	if c.N <= 0 {
		return dst
	}
	return append(dst, Segment{0, int64(c.N) * c.ElemSize})
}

// Size implements Datatype.
func (c Contig) Size() int64 {
	if c.N <= 0 {
		return 0
	}
	return int64(c.N) * c.ElemSize
}

// IndexedBlock mirrors MPI_TYPE_CREATE_INDEXED_BLOCK: equal-length blocks of
// Blocklen elements at the given element displacements. This is the type
// the input processors derive from the octree data: each displacement is
// the index of a run of node records belonging to one octree block.
type IndexedBlock struct {
	Blocklen int     // elements per block
	Displs   []int64 // element displacements (need not be sorted)
	ElemSize int64   // bytes per element
}

// Segments implements Datatype: sorted, with adjacent/overlapping runs
// coalesced.
func (t IndexedBlock) Segments() []Segment {
	return t.AppendSegments(make([]Segment, 0, len(t.Displs)))
}

// AppendSegments implements Datatype: the per-displacement runs are staged
// in dst's spare capacity and coalesced in place, so a caller reusing dst
// across steps allocates nothing once it has grown to size.
func (t IndexedBlock) AppendSegments(dst []Segment) []Segment {
	if t.Blocklen <= 0 || len(t.Displs) == 0 {
		return dst
	}
	base := len(dst)
	for _, d := range t.Displs {
		dst = append(dst, Segment{Off: d * t.ElemSize, Len: int64(t.Blocklen) * t.ElemSize})
	}
	tail := Coalesce(dst[base:])
	return dst[:base+len(tail)]
}

// Size implements Datatype. Overlapping displacements are counted once
// (consistent with Segments).
func (t IndexedBlock) Size() int64 {
	var n int64
	for _, s := range t.Segments() {
		n += s.Len
	}
	return n
}

// Coalesce sorts segments by offset, drops empty ones, and merges
// overlapping or adjacent runs. The result is a prefix of the input slice
// (the work happens in place and allocates nothing); the input may be
// reordered.
func Coalesce(segs []Segment) []Segment {
	nonEmpty := segs[:0]
	for _, s := range segs {
		if s.Len > 0 {
			nonEmpty = append(nonEmpty, s)
		}
	}
	segs = nonEmpty
	if len(segs) == 0 {
		return nil
	}
	slices.SortFunc(segs, func(a, b Segment) int {
		switch {
		case a.Off < b.Off:
			return -1
		case a.Off > b.Off:
			return 1
		}
		return 0
	})
	out := segs[:1]
	for _, s := range segs[1:] {
		last := &out[len(out)-1]
		if s.Off <= last.Off+last.Len {
			if end := s.Off + s.Len; end > last.Off+last.Len {
				last.Len = end - last.Off
			}
		} else {
			out = append(out, s)
		}
	}
	return out
}

// shiftInto appends the segments displaced by disp bytes to dst.
func shiftInto(dst, segs []Segment, disp int64) []Segment {
	for _, s := range segs {
		dst = append(dst, Segment{Off: s.Off + disp, Len: s.Len})
	}
	return dst
}

// validate checks segment sanity for error messages.
func validate(segs []Segment) error {
	for _, s := range segs {
		if s.Off < 0 || s.Len < 0 {
			return fmt.Errorf("mpiio: invalid segment %+v: %w", s, pfs.ErrPermanent)
		}
	}
	return nil
}
