package mpiio

// PR 4's regression harness for the fetch-side handle reuse: Reopen must
// behave exactly like a fresh Open (while keeping the grown scratch
// buffers), ReadContigInto/ReadAllInto must match their allocating
// counterparts byte for byte, and the steady-state reopen-per-step indexed
// read — the input processors' per-timestep pattern — must allocate
// nothing.

import (
	"bytes"
	"testing"

	"repro/internal/mpi"
	"repro/internal/pfs"
)

func TestReopenMatchesOpen(t *testing.T) {
	st := pfs.NewMemStore()
	a := makeTestFile(t, st, "a", 4096)
	b := makeTestFile(t, st, "b", 8192)
	f, err := Open(nil, st, "a")
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Read() // default view: the whole file
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, a) {
		t.Fatal("initial open read mismatch")
	}
	// Narrow the view and sieve gap, then Reopen: both must reset.
	f.SetView(8, Contig{N: 16, ElemSize: 4})
	f.SieveGap = 1
	if err := f.Reopen(nil, st, "b"); err != nil {
		t.Fatal(err)
	}
	if f.Size() != int64(len(b)) || f.SieveGap != DefaultSieveGap {
		t.Errorf("Reopen kept stale size/sieve gap: %d, %d", f.Size(), f.SieveGap)
	}
	got, err = f.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, b) {
		t.Error("reopened handle did not read the new object's whole view")
	}
	if err := f.Reopen(nil, st, "missing"); err == nil {
		t.Error("Reopen of a missing object succeeded")
	}
}

func TestReadContigIntoMatchesReadContig(t *testing.T) {
	st := pfs.NewMemStore()
	makeTestFile(t, st, "f", 2048)
	f, err := Open(nil, st, "f")
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.ReadContig(100, 300)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 300)
	if err := f.ReadContigInto(100, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, dst) {
		t.Error("ReadContigInto differs from ReadContig")
	}
	if err := f.ReadContigInto(2000, dst); err == nil {
		t.Error("read beyond EOF accepted")
	}
	if err := f.ReadContigInto(-1, dst[:1]); err == nil {
		t.Error("negative offset accepted")
	}
	// Out-of-range lengths must fail fast, before the output allocation.
	if _, err := f.ReadContig(0, 1<<40); err == nil {
		t.Error("absurd ReadContig length accepted")
	}
	if _, err := f.ReadContig(10, -1); err == nil {
		t.Error("negative ReadContig length accepted")
	}
}

// TestReopenedIndexedReadAllocFree extends the PR 2 steady-state gate to
// the PR 4 fetch pattern: every step reopens the handle onto that step's
// object, rebuilds the indexed view in place (same displacement buffer,
// boxed datatype reused via pointer) and packs the view into a reused
// destination — zero allocations once the buffers have grown.
func TestReopenedIndexedReadAllocFree(t *testing.T) {
	st := pfs.NewMemStore()
	names := []string{"s0", "s1", "s2"}
	for _, n := range names {
		makeTestFile(t, st, n, 128<<10)
	}
	f, err := Open(nil, st, names[0])
	if err != nil {
		t.Fatal(err)
	}
	displs := make([]int64, 200)
	ib := IndexedBlock{Blocklen: 1, Displs: displs, ElemSize: 12}
	dst := make([]byte, 200*12)
	step := 0
	readStep := func() {
		for i := range displs {
			displs[i] = int64(i*37 + step%3)
		}
		if err := f.Reopen(nil, st, names[step%len(names)]); err != nil {
			t.Fatal(err)
		}
		f.SetView(0, &ib)
		n, err := f.ViewSize()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.ReadInto(dst[:n]); err != nil {
			t.Fatal(err)
		}
		step++
	}
	for i := 0; i < len(names); i++ { // warm every object's size path
		readStep()
	}
	if avg := testing.AllocsPerRun(30, readStep); avg != 0 {
		t.Errorf("steady-state reopen+indexed read allocates %v per step, want 0", avg)
	}
}

func TestReadAllIntoMatchesReadAll(t *testing.T) {
	const ranks, elems = 4, 1024
	st := pfs.NewMemStore()
	makeTestFile(t, st, "f", 12*elems)
	fresh := make([][]byte, ranks)
	into := make([][]byte, ranks)
	mpi.RunReal(ranks, func(c *mpi.Comm) {
		var displs []int64
		for e := c.Rank(); e < elems; e += ranks {
			displs = append(displs, int64(e))
		}
		f, err := Open(c, st, "f")
		if err != nil {
			t.Error(err)
			return
		}
		f.SetView(0, IndexedBlock{Blocklen: 1, Displs: displs, ElemSize: 12})
		got, err := f.ReadAll(1)
		if err != nil {
			t.Error(err)
			return
		}
		fresh[c.Rank()] = got
		n, err := f.ViewSize()
		if err != nil {
			t.Error(err)
			return
		}
		dst := make([]byte, n)
		m, err := f.ReadAllInto(2, dst)
		if err != nil {
			t.Error(err)
			return
		}
		into[c.Rank()] = dst[:m]
		if _, err := f.ReadAllInto(3, dst[:1]); err == nil && n > 1 {
			t.Error("short ReadAllInto buffer accepted")
		}
	})
	for r := 0; r < ranks; r++ {
		if !bytes.Equal(fresh[r], into[r]) {
			t.Errorf("rank %d: ReadAllInto differs from ReadAll (%d vs %d bytes)", r, len(into[r]), len(fresh[r]))
		}
	}
}
