package mpiio

// PR 6's coverage of the Reopen error paths: a failed Reopen must leave the
// handle fully usable on its previous object — the guarantee the
// fault-tolerant collective fetch path leans on (a rank whose step-object
// open fails keeps serving the previous step, docs/faults.md) — and views
// that outlive a shrunk object must fail loudly, not read stale bytes.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/pfs"
)

// failSizeStore wraps a store with a Size that errors while fail is set.
type failSizeStore struct {
	pfs.Store
	fail bool
}

func (s *failSizeStore) Size(name string) (int64, error) {
	if s.fail {
		return 0, fmt.Errorf("probe down: %w", pfs.ErrTransient)
	}
	return s.Store.Size(name)
}

func TestReopenMissingObjectKeepsHandle(t *testing.T) {
	st := pfs.NewMemStore()
	a := makeTestFile(t, st, "a", 1024)
	f, err := Open(nil, st, "a")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Opened() || f.Name() != "a" {
		t.Fatalf("Opened/Name = %v/%q after Open", f.Opened(), f.Name())
	}
	err = f.Reopen(nil, st, "missing")
	if !errors.Is(err, pfs.ErrPermanent) {
		t.Fatalf("Reopen missing = %v, want ErrPermanent classification", err)
	}
	// The handle must still serve the previous object in full.
	if !f.Opened() || f.Name() != "a" || f.Size() != 1024 {
		t.Fatalf("failed Reopen disturbed the handle: %q size %d", f.Name(), f.Size())
	}
	got, err := f.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, a) {
		t.Error("handle after failed Reopen read wrong bytes")
	}
}

func TestReopenFailedSizeProbeKeepsHandle(t *testing.T) {
	inner := pfs.NewMemStore()
	a := makeTestFile(t, inner, "a", 512)
	makeTestFile(t, inner, "b", 256)
	st := &failSizeStore{Store: inner}
	f, err := Open(nil, st, "a")
	if err != nil {
		t.Fatal(err)
	}
	st.fail = true
	err = f.Reopen(nil, st, "b")
	if !pfs.IsTransient(err) {
		t.Fatalf("Reopen with failing probe = %v, want transient classification", err)
	}
	if f.Name() != "a" || f.Size() != 512 {
		t.Fatalf("failed probe disturbed the handle: %q size %d", f.Name(), f.Size())
	}
	got, err := f.Read()
	if err != nil || !bytes.Equal(got, a) {
		t.Fatalf("handle after failed probe: %v", err)
	}
	// Probe recovery: the same Reopen succeeds once the store heals.
	st.fail = false
	if err := f.Reopen(nil, st, "b"); err != nil {
		t.Fatal(err)
	}
	if f.Name() != "b" || f.Size() != 256 {
		t.Errorf("healed Reopen: %q size %d", f.Name(), f.Size())
	}
}

// TestReopenShrunkObject: an object that shrinks between steps (a
// checkpoint rewrite, a torn producer) must fail the view checks, and a
// Reopen onto it must adopt the new size rather than the cached one.
func TestReopenShrunkObject(t *testing.T) {
	st := pfs.NewMemStore()
	makeTestFile(t, st, "a", 1024)
	f, err := Open(nil, st, "a")
	if err != nil {
		t.Fatal(err)
	}
	f.SetView(0, &IndexedBlock{Blocklen: 1, Displs: []int64{0, 63}, ElemSize: 16})
	buf := make([]byte, 32)
	if _, err := f.ReadInto(buf); err != nil {
		t.Fatal(err)
	}
	// Shrink the object under the handle, then Reopen: the stale view's
	// last segment [1008,1024) now reaches beyond EOF and must error.
	short := make([]byte, 100)
	if err := st.Write("a", short); err != nil {
		t.Fatal(err)
	}
	if err := f.Reopen(nil, st, "a"); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 100 {
		t.Fatalf("Reopen kept stale size %d", f.Size())
	}
	f.SetView(0, &IndexedBlock{Blocklen: 1, Displs: []int64{0, 63}, ElemSize: 16})
	if _, err := f.ReadInto(buf); err == nil {
		t.Error("view beyond the shrunk object's EOF read without error")
	}
	if _, err := f.ViewSize(); err == nil {
		t.Error("ViewSize beyond the shrunk object's EOF succeeded")
	}
	// A contiguous read past the new EOF must also fail.
	if err := f.ReadContigInto(96, make([]byte, 16)); err == nil {
		t.Error("contiguous read past shrunk EOF succeeded")
	}
	// And a view within the shrunk object still works.
	f.SetView(0, Contig{N: 100, ElemSize: 1})
	got := make([]byte, 100)
	if _, err := f.ReadInto(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, short) {
		t.Error("in-range view read wrong bytes after shrink")
	}
}

// TestReopenShrunkUnderSimTransport runs the shrunk-object probe under the
// simulated transport to keep the error path race- and transport-agnostic.
func TestReopenShrunkUnderSimTransport(t *testing.T) {
	st := pfs.NewMemStore()
	makeTestFile(t, st, "a", 256)
	mpi.RunSim(1, mpi.SimConfig{OutBW: 1e9, InBW: 1e9, DiskClientBW: 1e9, DiskAggBW: 1e9}, func(c *mpi.Comm) {
		f, err := Open(c, st, "a")
		if err != nil {
			t.Error(err)
			return
		}
		if err := st.Write("a", make([]byte, 10)); err != nil {
			t.Error(err)
			return
		}
		if err := f.Reopen(c, st, "a"); err != nil {
			t.Error(err)
			return
		}
		if err := f.ReadContigInto(0, make([]byte, 32)); err == nil {
			t.Error("read past shrunk EOF succeeded under sim transport")
		}
	})
}
