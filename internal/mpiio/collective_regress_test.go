package mpiio

// PR 5's regression harness for the epoch-scoped collective read: the new
// ReadAllInto must match the retained per-call two-phase path byte for
// byte AND stat for stat (PhysReads/PhysBytes/UsefulBytes/ShuffleBytes/
// ShuffleMsgs on the file, MsgsSent/BytesSent/MsgsRecv/BytesRecv on the
// communicator), a steady-state collective round must allocate nothing on
// any rank, and a batch consumer that holds pieces across rounds must keep
// seeing correct data through the pre-epoch fallback path.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/mpi"
	"repro/internal/pfs"
)

// collStats is the accounting snapshot the equivalence test compares.
type collStats struct {
	PhysReads    int
	PhysBytes    int64
	UsefulBytes  int64
	ShuffleBytes int64
	ShuffleMsgs  int
	MsgsSent     int
	BytesSent    int64
	MsgsRecv     int
	BytesRecv    int64
}

func snapStats(f *File, c *mpi.Comm) collStats {
	return collStats{
		PhysReads: f.PhysReads, PhysBytes: f.PhysBytes, UsefulBytes: f.UsefulBytes,
		ShuffleBytes: f.ShuffleBytes, ShuffleMsgs: f.ShuffleMsgs,
		MsgsSent: c.MsgsSent, BytesSent: c.BytesSent,
		MsgsRecv: c.MsgsRecv, BytesRecv: c.BytesRecv,
	}
}

// interleavedView gives rank r elements r, r+n, r+2n, ... — the fully
// interleaved pattern that forces every rank to shuffle with every other.
func interleavedView(rank, ranks, elems int, elemSize int64) IndexedBlock {
	var displs []int64
	for e := rank; e < elems; e += ranks {
		displs = append(displs, int64(e))
	}
	return IndexedBlock{Blocklen: 1, Displs: displs, ElemSize: elemSize}
}

// runCollectiveRounds opens the named objects on every rank, applies the
// view built by mkView, and runs one collective read per object through
// read. It returns each rank's bytes from every round plus the final
// accounting snapshot.
func runCollectiveRounds(t *testing.T, st pfs.Store, names []string, ranks int,
	mkView func(rank int) IndexedBlock,
	read func(f *File, seq int, dst []byte) (int, error),
) ([][][]byte, []collStats) {
	t.Helper()
	out := make([][][]byte, ranks)
	stats := make([]collStats, ranks)
	mpi.RunReal(ranks, func(c *mpi.Comm) {
		f, err := Open(c, st, names[0])
		if err != nil {
			t.Error(err)
			return
		}
		ib := mkView(c.Rank())
		for seq, name := range names {
			if err := f.Reopen(c, st, name); err != nil {
				t.Error(err)
				return
			}
			f.SetView(0, &ib)
			n, err := f.ViewSize()
			if err != nil {
				t.Error(err)
				return
			}
			dst := make([]byte, n)
			m, err := read(f, seq+1, dst)
			if err != nil {
				t.Error(err)
				return
			}
			out[c.Rank()] = append(out[c.Rank()], dst[:m])
		}
		stats[c.Rank()] = snapStats(f, c)
	})
	return out, stats
}

// TestReadAllEpochMatchesPerCall pins the epoch-scoped collective to the
// retained per-call reference: same bytes on every rank in every round,
// and bit-identical I/O and message accounting.
func TestReadAllEpochMatchesPerCall(t *testing.T) {
	for _, tc := range []struct {
		name  string
		ranks int
		elems int
	}{
		{"4-rank-interleaved", 4, 256},
		{"7-rank-uneven", 7, 100},
		{"1-rank", 1, 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := pfs.NewMemStore()
			names := []string{"s0", "s1", "s2", "s3"}
			for i, n := range names {
				makeTestFile(t, st, n, 12*tc.elems+i) // vary sizes slightly
			}
			mkView := func(rank int) IndexedBlock {
				return interleavedView(rank, tc.ranks, tc.elems, 12)
			}
			legacy, legacyStats := runCollectiveRounds(t, st, names, tc.ranks, mkView,
				func(f *File, seq int, dst []byte) (int, error) { return f.readAllIntoPerCall(seq, dst) })
			epoch, epochStats := runCollectiveRounds(t, st, names, tc.ranks, mkView,
				func(f *File, seq int, dst []byte) (int, error) { return f.ReadAllInto(seq, dst) })
			for r := 0; r < tc.ranks; r++ {
				for round := range legacy[r] {
					if !bytes.Equal(legacy[r][round], epoch[r][round]) {
						t.Errorf("rank %d round %d: epoch path bytes differ from per-call path", r, round)
					}
				}
				if legacyStats[r] != epochStats[r] {
					t.Errorf("rank %d accounting differs:\n per-call %+v\n epoch    %+v", r, legacyStats[r], epochStats[r])
				}
			}
		})
	}
}

// TestReadAllEpochEmptyViews covers the degenerate collectives on the
// epoch path: some ranks empty, and everyone empty.
func TestReadAllEpochEmptyViews(t *testing.T) {
	st := pfs.NewMemStore()
	makeTestFile(t, st, "f", 256)
	mpi.RunReal(3, func(c *mpi.Comm) {
		f, _ := Open(c, st, "f")
		for round := 0; round < 3; round++ {
			if c.Rank() == 1 {
				f.SetView(0, IndexedBlock{Blocklen: 4, Displs: []int64{2}, ElemSize: 8})
			} else {
				f.SetView(0, Contig{N: 0, ElemSize: 1})
			}
			got, err := f.ReadAll(1 + round)
			if err != nil {
				t.Error(err)
				return
			}
			want := 0
			if c.Rank() == 1 {
				want = 32
			}
			if len(got) != want {
				t.Errorf("rank %d round %d: got %d bytes, want %d", c.Rank(), round, len(got), want)
			}
			// All-empty round: every rank must return immediately.
			f.SetView(0, Contig{N: 0, ElemSize: 1})
			if out, err := f.ReadAll(100 + round); err != nil || len(out) != 0 {
				t.Errorf("rank %d all-empty round: %v, %d bytes", c.Rank(), err, len(out))
			}
		}
	})
}

// TestReadAllSteadyStateAllocFree is the PR 5 acceptance gate for the
// collective layer: a steady-state collective round — reopen onto the
// step's object, rebuild the view in place, two-phase read with the
// epoch-scoped scratch — allocates nothing on any rank. Allocation counts
// are process-global (see steadyAllocs in the compositor suite), so a
// nonzero result implicates the steady state of *some* rank.
func TestReadAllSteadyStateAllocFree(t *testing.T) {
	const ranks, elems = 4, 512
	st := pfs.NewMemStore()
	names := []string{"s0", "s1", "s2"}
	for _, n := range names {
		makeTestFile(t, st, n, 12*elems)
	}
	var avg float64
	mpi.RunReal(ranks, func(c *mpi.Comm) {
		f, err := Open(c, st, names[0])
		if err != nil {
			t.Error(err)
			return
		}
		ib := interleavedView(c.Rank(), ranks, elems, 12)
		n := int64(len(ib.Displs)) * 12
		dst := make([]byte, n)
		seq := 0
		round := func() {
			seq++
			if err := f.Reopen(c, st, names[seq%len(names)]); err != nil {
				t.Error(err)
				return
			}
			f.SetView(0, &ib)
			if _, err := f.ReadAllInto(seq, dst); err != nil {
				t.Error(err)
			}
			// Lock-step so every release of this round lands before any
			// rank starts the next (free-running drift could outrun a pool).
			c.Barrier()
		}
		const warm, rounds = 5, 20
		for i := 0; i < warm; i++ {
			round()
		}
		if c.Rank() == 0 {
			avg = testing.AllocsPerRun(rounds, round)
		} else {
			for i := 0; i < rounds+1; i++ {
				round()
			}
		}
	})
	if avg != 0 {
		t.Errorf("steady-state collective read allocates %v per round, want 0", avg)
	}
}

// BenchmarkCollectiveReadSteadyState measures a steady-state 4-rank
// two-phase collective round over a fixed interleaved view: `epoch` is the
// PR 5 scratch path (must report ~0 allocs/op across all ranks), `percall`
// the retained allocating reference.
func BenchmarkCollectiveReadSteadyState(b *testing.B) {
	const ranks, elems = 4, 4096
	st := pfs.NewMemStore()
	data := make([]byte, 12*elems)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := st.Write("f", data); err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name string
		read func(f *File, seq int, dst []byte) (int, error)
	}{
		{"epoch", func(f *File, seq int, dst []byte) (int, error) { return f.ReadAllInto(seq, dst) }},
		{"percall", func(f *File, seq int, dst []byte) (int, error) { return f.readAllIntoPerCall(seq, dst) }},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			mpi.RunReal(ranks, func(c *mpi.Comm) {
				f, err := Open(c, st, "f")
				if err != nil {
					b.Error(err)
					return
				}
				ib := interleavedView(c.Rank(), ranks, elems, 12)
				f.SetView(0, &ib)
				dst := make([]byte, int64(len(ib.Displs))*12)
				const warm = 3
				for i := 0; i < warm; i++ {
					if _, err := mode.read(f, i+1, dst); err != nil {
						b.Error(err)
						return
					}
				}
				if c.Rank() == 0 {
					b.ResetTimer()
				}
				for i := 0; i < b.N; i++ {
					if _, err := mode.read(f, warm+1+i, dst); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// TestCollectiveBatchConsumerFallback pins the pre-epoch fallback path,
// mirroring the FrameRing batch-consumer test: a consumer that holds its
// received piece batches instead of releasing them pins their epochs out
// of the senders' free lists, so later rounds must fall back to fresh
// staging — the held pieces keep their bytes while every subsequent round
// still reads correct data — and releasing the batches afterwards lets the
// pools recover.
func TestCollectiveBatchConsumerFallback(t *testing.T) {
	const ranks, elems, holdRound, rounds = 4, 256, 2, 6
	st := pfs.NewMemStore()
	names := make([]string, rounds)
	wants := make([][][]byte, rounds) // per round, per rank: expected bytes
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		data := makeTestFile(t, st, names[i], 12*elems)
		wants[i] = make([][]byte, ranks)
		for r := 0; r < ranks; r++ {
			var want []byte
			for e := r; e < elems; e += ranks {
				want = append(want, data[e*12:(e+1)*12]...)
			}
			wants[i][r] = want
		}
	}
	files := make([]*File, ranks)
	mpi.RunReal(ranks, func(c *mpi.Comm) {
		me := c.Rank()
		f, err := Open(c, st, names[0])
		if err != nil {
			t.Error(err)
			return
		}
		files[me] = f
		ib := interleavedView(me, ranks, elems, 12)
		dst := make([]byte, int64(len(ib.Displs))*12)
		var held []*pieceBatch
		var heldData [][]byte // snapshot of every held piece's bytes
		for round := 0; round < rounds; round++ {
			s := f.collective()
			if me == 1 && round == holdRound {
				// Become a non-releasing batch consumer for this round.
				s.holdBatch = func(b *pieceBatch) bool {
					held = append(held, b)
					for _, pc := range b.ps {
						heldData = append(heldData, append([]byte(nil), pc.Data...))
					}
					return true
				}
			} else {
				s.holdBatch = nil
			}
			if err := f.Reopen(c, st, names[round]); err != nil {
				t.Error(err)
				return
			}
			f.SetView(0, &ib)
			if _, err := f.ReadAllInto(round+1, dst); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(dst, wants[round][me]) {
				t.Errorf("rank %d round %d: wrong collective read contents", me, round)
			}
			c.Barrier() // lock-step the rounds across ranks
		}
		// The held pieces must still show the bytes of their own round:
		// the fallback path may not have recycled the epochs they alias,
		// even though several rounds (with different data) ran since.
		if me == 1 {
			i := 0
			for _, b := range held {
				for _, pc := range b.ps {
					if !bytes.Equal(pc.Data, heldData[i]) {
						t.Errorf("held piece %d was overwritten after its epoch ended", i)
					}
					i++
				}
			}
			c.Barrier() // peers wait: epochs stay pinned during the check
			for _, b := range held {
				b.release()
			}
		} else {
			c.Barrier()
		}
	})
	// After release, every pinned epoch must be back on its sender's free
	// list: rank 1 held batches from all three peers, so each peer ended
	// the run with (at least) one epoch pinned plus one in rotation.
	for r, f := range files {
		if f == nil || f.coll == nil {
			t.Fatalf("rank %d file missing", r)
		}
		s := f.coll
		s.mu.Lock()
		free := len(s.free)
		s.mu.Unlock()
		if free == 0 {
			t.Errorf("rank %d: no epoch returned to the free list after release", r)
		}
		for _, ep := range s.free {
			if got := ep.refs.Load(); got != 0 {
				t.Errorf("rank %d: free epoch with %d outstanding refs", r, got)
			}
		}
	}
}
