package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/quake"
	"repro/internal/render"
)

// EngineConfig configures an Engine. The zero value serves: a 1-rank-per-
// role layout, a 64 MiB cache, four pooled sessions, and 32-step render
// windows.
type EngineConfig struct {
	// Layout is the pipeline layout each session runs; the zero value
	// means one rank per role (Groups=IPsPerGroup=Renderers=Outputs=1).
	// Frames are bit-identical across layouts (pinned by the core suite),
	// so serving with a small layout matches any batch render.
	Layout core.Layout
	// CacheBytes bounds the frame cache (0 = 64 MiB, negative disables).
	CacheBytes int64
	// MaxSessions bounds the idle-session pool (0 = 4). Sessions in use
	// by concurrent requests are not counted; admission control (Server)
	// bounds those.
	MaxSessions int
	// MaxWindow bounds the steps of one render call (0 = 32): both the
	// largest request range and the pipeline window a cold render runs.
	MaxWindow int
	// Enhancement, Lighting and Workers are engine-wide render options,
	// identical for every session (and therefore excluded from cache
	// keys).
	Enhancement bool
	// Lighting enables gradient Phong lighting in every session.
	Lighting bool
	// Workers bounds each rank's shared-memory render parallelism
	// (core.Options.Workers).
	Workers int
	// FixedVMax pins the quantization range; 0 scans the dataset once at
	// engine construction. Either way every session quantizes with the
	// same range, so cached and fresh frames are interchangeable.
	FixedVMax float32
	// Tolerate enables degraded-mode fault tolerance (docs/faults.md):
	// failed reads serve stale data and mark the frame instead of
	// failing the request. Degraded frames are never cached.
	Tolerate bool
}

// Engine owns a dataset and renders frame requests through pooled
// per-session pipeline instances, filling the frame cache. It is safe
// for concurrent use: each in-flight render exclusively owns one session
// (a core.RealWorkload with private scratches, worker pools and frame
// ring), and the cache deals only in owned copies.
type Engine struct {
	store pfs.Store
	meta  quake.Meta
	cfg   EngineConfig
	vmax  float32
	cache *FrameCache

	mu     sync.Mutex
	idle   []*session // oldest first; evicted from the front
	closed bool

	rendered atomic.Uint64 // frames produced by pipeline runs
	sessions atomic.Uint64 // sessions ever built (cold starts)
}

// session is one exclusively-owned rendering instance: a workload whose
// scratches, pools and frame ring belong to whichever request holds it.
type session struct {
	cfg RenderConfig
	w   *core.RealWorkload
}

// NewEngine opens the dataset's metadata, establishes the quantization
// range (one full-dataset scan unless cfg.FixedVMax pins it), and returns
// an Engine ready to serve. Sessions are built lazily on first use of
// each render configuration.
func NewEngine(store pfs.Store, cfg EngineConfig) (*Engine, error) {
	if cfg.Layout == (core.Layout{}) {
		cfg.Layout = core.Layout{Groups: 1, IPsPerGroup: 1, Renderers: 1, Outputs: 1}
	}
	if err := cfg.Layout.Validate(); err != nil {
		return nil, err
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 4
	}
	if cfg.MaxWindow <= 0 {
		cfg.MaxWindow = 32
	}
	meta, err := quake.ReadMeta(store)
	if err != nil {
		return nil, fmt.Errorf("serve: reading dataset meta: %w", err)
	}
	e := &Engine{store: store, meta: meta, cfg: cfg, cache: NewFrameCache(cfg.CacheBytes)}
	if cfg.FixedVMax > 0 {
		e.vmax = cfg.FixedVMax
	} else if e.vmax, err = scanVMax(store, meta); err != nil {
		return nil, err
	}
	return e, nil
}

// scanVMax computes the dataset-wide maximum velocity magnitude, exactly
// as the workload's own startup scan does, so engine-brokered sessions
// (which receive the range via FixedVMax) quantize identically to a
// standalone whole-dataset workload.
func scanVMax(store pfs.Store, meta quake.Meta) (float32, error) {
	var vmax float32
	buf := make([]byte, meta.NumNodes*quake.BytesPerNode)
	var vec, mag []float32
	var err error
	for t := 0; t < meta.NumSteps; t++ {
		if err = store.ReadAt(nil, quake.StepObject(t), 0, buf); err != nil {
			return 0, fmt.Errorf("serve: scanning step %d: %w", t, err)
		}
		if vec, err = quake.DecodeStepInto(vec, buf); err != nil {
			return 0, fmt.Errorf("serve: scanning step %d: %w", t, err)
		}
		mag = render.MagnitudeInto(mag, vec)
		for _, m := range mag {
			if m > vmax {
				vmax = m
			}
		}
	}
	if vmax == 0 {
		vmax = 1
	}
	return vmax, nil
}

// Steps returns the dataset's timestep count (valid request steps are
// [0, Steps)).
func (e *Engine) Steps() int { return e.meta.NumSteps }

// MaxWindow returns the largest step range one request may ask for.
func (e *Engine) MaxWindow() int { return e.cfg.MaxWindow }

// VMax returns the engine-wide quantization range every session uses.
func (e *Engine) VMax() float32 { return e.vmax }

// Cache exposes the frame cache (for stats and tests).
func (e *Engine) Cache() *FrameCache { return e.cache }

// options builds the session options for cfg: the per-request view/TF
// parameters over the engine-wide settings, with the shared quantization
// range pinned so every session agrees with every other.
func (e *Engine) options(cfg RenderConfig) core.Options {
	o := core.DefaultOptions(cfg.Width, cfg.Height)
	if cfg.Orbit {
		o.View = render.OrbitView(cfg.Width, cfg.Height, cfg.Az, cfg.El)
	}
	o.TFName = cfg.TF
	o.Enhancement = e.cfg.Enhancement
	o.Lighting = e.cfg.Lighting
	o.Workers = e.cfg.Workers
	o.FixedVMax = e.vmax
	o.Faults.Tolerate = e.cfg.Tolerate
	return o
}

// acquire hands the caller an exclusively-owned session for cfg: the
// most recently parked idle session with the same configuration, or a
// freshly built one (the cold start pays the workload's one-time octree
// setup; the dataset scan is skipped because the engine pins vmax).
func (e *Engine) acquire(cfg RenderConfig) (*session, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("serve: engine closed")
	}
	for i := len(e.idle) - 1; i >= 0; i-- {
		if e.idle[i].cfg == cfg {
			s := e.idle[i]
			e.idle = append(e.idle[:i], e.idle[i+1:]...)
			e.mu.Unlock()
			return s, nil
		}
	}
	e.mu.Unlock()
	w, err := core.NewRealWorkload(e.cfg.Layout, e.options(cfg), e.store)
	if err != nil {
		return nil, fmt.Errorf("serve: building session: %w", err)
	}
	e.sessions.Add(1)
	return &session{cfg: cfg, w: w}, nil
}

// release parks a session for reuse, evicting the least recently used
// idle session past the pool bound (its worker pools are shut down).
// Sessions whose render failed are discarded instead (see discard).
func (e *Engine) release(s *session) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		s.w.Close()
		return
	}
	e.idle = append(e.idle, s)
	var victim *session
	if len(e.idle) > e.cfg.MaxSessions {
		victim = e.idle[0]
		e.idle = e.idle[1:]
	}
	e.mu.Unlock()
	if victim != nil {
		victim.w.Close()
	}
}

// discard closes a session whose pipeline run failed: a mid-run abort
// leaves workload state undefined, so it never returns to the pool.
func (e *Engine) discard(s *session) { s.w.Close() }

// IdleSessions returns the pooled-session count (for stats).
func (e *Engine) IdleSessions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.idle)
}

// RenderedFrames returns the number of frames produced by pipeline runs
// (cache hits excluded) since construction.
func (e *Engine) RenderedFrames() uint64 { return e.rendered.Load() }

// ColdSessions returns how many sessions were ever built (cold starts).
func (e *Engine) ColdSessions() uint64 { return e.sessions.Load() }

// Close shuts down every idle session's worker pools and refuses further
// renders. The caller must drain in-flight renders first (the Server's
// Shutdown does).
func (e *Engine) Close() {
	e.mu.Lock()
	idle := e.idle
	e.idle = nil
	e.closed = true
	e.mu.Unlock()
	for _, s := range idle {
		s.w.Close()
	}
}

// CachedInto serves step from the cache into the caller-owned dst,
// bypassing sessions and admission entirely. This is the warm path the
// load suite pins at zero allocations per hit (dst reuse makes the copy
// in-place).
func (e *Engine) CachedInto(cfg RenderConfig, step int, dst *img.Image) bool {
	return e.cache.GetInto(FrameKey{Cfg: cfg, Step: step}, dst)
}

// Render produces frames for dataset steps [lo, hi) under cfg and hands
// each to visit in step order. Cached steps are copied into scratch
// (caller-owned, reused across hits) and visited with cached=true;
// contiguous runs of missing steps are rendered by an exclusively-owned
// session in one pipeline window each, cached (unless degraded), and
// visited directly from the session's frame ring before release.
//
// The *img.Image passed to visit is only valid for the duration of the
// call — implementations copy or encode, never retain. A visit error
// aborts the remaining steps and is returned as-is.
func (e *Engine) Render(cfg RenderConfig, lo, hi int, scratch *img.Image, visit func(step int, frame *img.Image, degraded, cached bool) error) error {
	if lo < 0 || hi <= lo || hi > e.meta.NumSteps {
		return fmt.Errorf("serve: step range [%d, %d) outside dataset steps [0, %d)", lo, hi, e.meta.NumSteps)
	}
	if hi-lo > e.cfg.MaxWindow {
		return fmt.Errorf("serve: step range [%d, %d) exceeds the %d-step window bound", lo, hi, e.cfg.MaxWindow)
	}
	for step := lo; step < hi; {
		if e.cache.GetInto(FrameKey{Cfg: cfg, Step: step}, scratch) {
			if err := visit(step, scratch, false, true); err != nil {
				return err
			}
			step++
			continue
		}
		segHi := step + 1
		for segHi < hi && !e.cache.Contains(FrameKey{Cfg: cfg, Step: segHi}) {
			segHi++
		}
		if err := e.renderSegment(cfg, step, segHi, visit); err != nil {
			return err
		}
		step = segHi
	}
	return nil
}

// renderSegment renders the contiguous missing steps [lo, hi) with one
// session window: cache-fill happens by copy while the frame is still
// owned by the session's ring, then the canvas goes straight back to the
// ring (the copy-out-or-release contract).
func (e *Engine) renderSegment(cfg RenderConfig, lo, hi int, visit func(int, *img.Image, bool, bool) error) error {
	s, err := e.acquire(cfg)
	if err != nil {
		return err
	}
	if err := s.run(e.cfg.Layout, lo, hi); err != nil {
		e.discard(s)
		return err
	}
	for i := 0; i < hi-lo; i++ {
		step := lo + i
		frame := s.w.Frame(i)
		if frame == nil {
			e.discard(s)
			return fmt.Errorf("serve: step %d produced no frame", step)
		}
		e.rendered.Add(1)
		degraded := s.w.FrameDegraded(i)
		if !degraded {
			e.cache.Put(FrameKey{Cfg: cfg, Step: step}, frame)
		}
		err := visit(step, frame, degraded, false)
		s.w.ReleaseFrame(i)
		if err != nil {
			// Remaining frames stay on the workload; the next
			// SetStepWindow (or Close) recycles them.
			e.release(s)
			return err
		}
	}
	e.release(s)
	return nil
}

// run aims the session's workload at dataset steps [lo, hi) and executes
// one pipeline run over its layout.
func (s *session) run(l core.Layout, lo, hi int) error {
	if err := s.w.SetStepWindow(lo, hi); err != nil {
		return err
	}
	p, err := core.NewPipeline(l, s.w)
	if err != nil {
		return err
	}
	var mu sync.Mutex
	var runErr error
	mpi.RunReal(l.WorldSize(), func(c *mpi.Comm) {
		if err := p.Run(c); err != nil {
			mu.Lock()
			if runErr == nil {
				runErr = err
			}
			mu.Unlock()
		}
	})
	return runErr
}
