package serve_test

import (
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/img"
	"repro/internal/pool"
	"repro/internal/serve"
)

// BenchmarkServeCachedFrame measures the warm serving path — a cache hit
// copied into a reused canvas plus the wire encode — which the load suite
// requires to be allocation-free.
func BenchmarkServeCachedFrame(b *testing.B) {
	store := buildDataset(b, 1)
	eng := newTestEngine(b, store, serve.EngineConfig{})
	defer eng.Close()
	cfg := serve.RenderConfig{Width: 256, Height: 256}
	var dst img.Image
	if err := eng.Render(cfg, 0, 1, &dst, func(int, *img.Image, bool, bool) error { return nil }); err != nil {
		b.Fatal(err)
	}
	if !eng.CachedInto(cfg, 0, &dst) {
		b.Fatal("frame not cached after render")
	}
	var buf []byte
	buf = serve.EncodeWireFrameInto(buf, 0, &dst, false)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !eng.CachedInto(cfg, 0, &dst) {
			b.Fatal("cache entry vanished")
		}
		buf = serve.EncodeWireFrameInto(buf, 0, &dst, false)
	}
}

// BenchmarkServeColdFrame measures an uncached render through the engine:
// session acquisition (warm after the first iteration), a one-step
// pipeline window, and the frame copy-out. The cache is disabled so every
// iteration pays the full render.
func BenchmarkServeColdFrame(b *testing.B) {
	store := buildDataset(b, 1)
	eng := newTestEngine(b, store, serve.EngineConfig{CacheBytes: -1})
	defer eng.Close()
	cfg := serve.RenderConfig{Width: 256, Height: 256}
	var dst img.Image
	// Warm the session pool so iterations measure renders, not construction.
	if err := eng.Render(cfg, 0, 1, &dst, func(int, *img.Image, bool, bool) error { return nil }); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := eng.Render(cfg, 0, 1, &dst, func(_ int, fr *img.Image, _, _ bool) error {
			if fr != &dst {
				dst.W, dst.H = fr.W, fr.H
				dst.Pix = pool.Grow(dst.Pix, len(fr.Pix))
				copy(dst.Pix, fr.Pix)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeConcurrentViewers drives the full HTTP stack with 8
// synthetic viewers over a mostly-warm view set and reports end-to-end
// frames/sec and p99 request latency — the headline serving numbers
// tracked in BENCH_serve.json.
func BenchmarkServeConcurrentViewers(b *testing.B) {
	const viewers = 8
	store := buildDataset(b, 3)
	views := []serve.RenderConfig{
		{Width: 64, Height: 64},
		{Width: 64, Height: 64, Orbit: true, Az: 30, El: 55},
		{Width: 64, Height: 64, Orbit: true, Az: 120, El: 35, TF: "hot"},
		{Width: 64, Height: 64, TF: "gray"},
	}
	eng := newTestEngine(b, store, serve.EngineConfig{MaxSessions: len(views)})
	defer eng.Close()
	srv := serve.NewServer(eng, serve.ServerConfig{MaxInFlight: 4})
	ts := newTestHTTPServer(b, srv)
	// Warm every (view, step) pair so the steady state matches a running
	// service with a hot cache.
	for _, cfg := range views {
		for step := 0; step < 3; step++ {
			if _, err := getFrameErr(ts, cfg, step); err != nil {
				b.Fatal(err)
			}
		}
	}

	var mu sync.Mutex
	lats := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	var errOnce sync.Once
	var firstErr error
	work := make(chan int, b.N)
	for i := 0; i < b.N; i++ {
		work <- i
	}
	close(work)
	for v := 0; v < viewers; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			local := make([]time.Duration, 0, b.N/viewers+1)
			for i := range work {
				cfg := views[i%len(views)]
				step := (i / len(views)) % 3
				t0 := time.Now()
				if _, err := getFrameErr(ts, cfg, step); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(v)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	if firstErr != nil {
		b.Fatal(firstErr)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		p99 := lats[(len(lats)*99)/100%len(lats)]
		b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
		b.ReportMetric(float64(len(lats))/elapsed.Seconds(), "frames/sec")
	}
}
