package serve_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/img"
	"repro/internal/serve"
)

// TestServeLoadConcurrentViewers is the load satellite: N synthetic
// viewers hammer a small view set through the HTTP layer. Every response
// must be bit-exact against a direct batch render of the same request,
// the cache hit rate must clear a floor (the view set is small, so after
// first touch nearly everything is warm), and the warm cached path must
// not allocate per hit.
func TestServeLoadConcurrentViewers(t *testing.T) {
	const (
		steps        = 3
		viewers      = 8
		reqPerViewer = 24
		hitRateFloor = 0.80
	)
	store := buildDataset(t, steps)
	views := []serve.RenderConfig{
		{Width: 32, Height: 32},
		{Width: 32, Height: 32, Orbit: true, Az: 30, El: 55},
		{Width: 32, Height: 32, Orbit: true, Az: 120, El: 35, TF: "hot"},
		{Width: 32, Height: 32, TF: "gray"},
	}
	refs := make([][]*img.Image, len(views))
	for i, cfg := range views {
		refs[i] = directFrames(t, store, cfg, false)
	}

	eng := newTestEngine(t, store, serve.EngineConfig{MaxSessions: len(views)})
	srv := serve.NewServer(eng, serve.ServerConfig{MaxInFlight: 4})
	ts := newTestHTTPServer(t, srv)

	var wg sync.WaitGroup
	errc := make(chan error, viewers)
	for v := 0; v < viewers; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + v)))
			for i := 0; i < reqPerViewer; i++ {
				ci := rng.Intn(len(views))
				step := rng.Intn(steps)
				frame, err := getFrameErr(ts, views[ci], step)
				if err != nil {
					errc <- err
					return
				}
				if d := img.MaxAbsDiff(refs[ci][step], frame); d != 0 {
					errc <- fmt.Errorf("viewer %d: cfg %d step %d differs from direct render (max diff %v)", v, ci, step, d)
					return
				}
			}
		}(v)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := eng.Cache().Stats()
	if rate := st.HitRate(); rate < hitRateFloor {
		t.Errorf("cache hit rate %.3f below floor %.2f (hits %d misses %d)", rate, hitRateFloor, st.Hits, st.Misses)
	}

	// The warm cached path must be allocation-free: a reused destination
	// canvas makes CachedInto pure copy work.
	cfg, step := views[0], 0
	var dst img.Image
	if !eng.CachedInto(cfg, step, &dst) {
		t.Fatal("expected a warm cache entry after the load run")
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if !eng.CachedInto(cfg, step, &dst) {
			t.Fatal("cache entry vanished")
		}
	}); allocs != 0 {
		t.Errorf("warm cache hit allocates %v times per run, want 0", allocs)
	}

	// And the full serve-side encode on top of a hit stays allocation-free
	// too once the wire buffer is warm.
	var buf []byte
	buf = serve.EncodeWireFrameInto(buf, step, &dst, false)
	if allocs := testing.AllocsPerRun(200, func() {
		eng.CachedInto(cfg, step, &dst)
		buf = serve.EncodeWireFrameInto(buf, step, &dst, false)
	}); allocs != 0 {
		t.Errorf("warm hit + wire encode allocates %v times per run, want 0", allocs)
	}
}
