package serve_test

import (
	"strings"
	"testing"

	"repro/internal/serve"
)

// fuzzLimits mirrors a small dataset so both accept and reject paths are
// reachable from short inputs.
var fuzzLimits = serve.Limits{Steps: 8, MaxRange: 4}

// FuzzServeRequestParse drives raw client input through both request
// decoders (query string and JSON body, chosen by asJSON) and checks the
// parser's hard invariants: no panic on any input, rejects stay bounded
// (the decoders cap input length before doing any work), and every
// accepted request is internally consistent — in-range steps, legal
// dimensions, a known transfer function and format, and view parameters
// only in orbit mode. Seed corpus under testdata/fuzz covers each accept
// shape and the trickier reject rules.
func FuzzServeRequestParse(f *testing.F) {
	seeds := []struct {
		raw    string
		asJSON bool
	}{
		{"step=3", false},
		{"lo=2&hi=5&w=64&h=32&tf=hot&format=png", false},
		{"step=0&view=orbit&az=-30.5&el=55", false},
		{"step=0&step=1", false},
		{"step=0&az=NaN", false},
		{"%zz", false},
		{"step=0&" + strings.Repeat("a", 64), false},
		{`{"step": 0}`, true},
		{`{"lo": 1, "hi": 4, "width": 48, "view": "orbit", "az": 30, "el": 10, "tf": "gray"}`, true},
		{`{"step": 0, "zoom": 2}`, true},
		{`{"step": "0"}`, true},
		{`{"step": 0} {"step": 1}`, true},
	}
	for _, s := range seeds {
		f.Add(s.raw, s.asJSON)
	}
	f.Fuzz(func(t *testing.T, raw string, asJSON bool) {
		var req serve.Request
		var err error
		if asJSON {
			req, err = serve.ParseJSONBody([]byte(raw), fuzzLimits)
		} else {
			req, err = serve.ParseQuery(raw, fuzzLimits)
		}
		if err != nil {
			return
		}
		if req.Lo < 0 || req.Hi <= req.Lo || req.Hi > fuzzLimits.Steps {
			t.Fatalf("accepted out-of-range window [%d, %d) from %q", req.Lo, req.Hi, raw)
		}
		if req.Hi-req.Lo > fuzzLimits.MaxRange {
			t.Fatalf("accepted window [%d, %d) past MaxRange %d from %q", req.Lo, req.Hi, fuzzLimits.MaxRange, raw)
		}
		cfg := req.Cfg
		if cfg.Width < serve.MinFrameDim || cfg.Width > serve.MaxFrameDim ||
			cfg.Height < serve.MinFrameDim || cfg.Height > serve.MaxFrameDim {
			t.Fatalf("accepted out-of-bounds frame %dx%d from %q", cfg.Width, cfg.Height, raw)
		}
		if !cfg.Orbit && (cfg.Az != 0 || cfg.El != 0) {
			t.Fatalf("accepted view angles az=%g el=%g without orbit from %q", cfg.Az, cfg.El, raw)
		}
		if cfg.Orbit && (cfg.Az < -360 || cfg.Az > 360 || cfg.El < 0 || cfg.El > 90) {
			t.Fatalf("accepted out-of-range orbit az=%g el=%g from %q", cfg.Az, cfg.El, raw)
		}
		// NaN never survives: it would poison FrameKey equality in the cache.
		if cfg.Az != cfg.Az || cfg.El != cfg.El {
			t.Fatalf("accepted NaN view angle from %q", raw)
		}
		switch cfg.TF {
		case "", "seismic", "gray", "hot":
		default:
			t.Fatalf("accepted unknown transfer function %q from %q", cfg.TF, raw)
		}
		if req.Format != serve.FormatRaw && req.Format != serve.FormatPNG {
			t.Fatalf("accepted unknown format %q from %q", req.Format, raw)
		}
	})
}
