package serve

import (
	"sync"

	"repro/internal/img"
	"repro/internal/pool"
)

// FrameCache is a byte-bounded LRU cache of rendered frames. It owns
// every pixel buffer it holds: Put copies the frame in (the source stays
// with the caller, honoring the frame ring's copy-out-or-release
// contract), GetInto copies the frame out into a caller-owned canvas.
// Nothing cached ever aliases a workload's frame ring, so sessions can
// release their canvases immediately after fill and concurrent readers
// never share mutable pixels.
//
// Eviction is strict LRU by bytes: Put evicts from the cold end until the
// new frame fits. Evicted entries park on a free list with their pixel
// buffers, so a steady mix of Put and eviction recycles buffers instead
// of allocating. All methods are safe for concurrent use.
type FrameCache struct {
	mu sync.Mutex
	m  map[FrameKey]*cacheEntry
	// hot/cold are the LRU list ends: hot.next is most recent,
	// cold.prev is the eviction candidate (sentinel-linked ring).
	hot, cold cacheEntry
	freeList  *cacheEntry
	limit     int64
	used      int64
	hits      uint64
	misses    uint64
	evictions uint64
}

// cacheEntry is one cached frame plus its LRU links; evicted entries are
// recycled (with their pixel buffers) through the cache's free list.
type cacheEntry struct {
	key        FrameKey
	w, h       int
	pix        []float32
	prev, next *cacheEntry
}

// entryOverhead approximates a cacheEntry's non-pixel footprint for the
// byte accounting, so zero-sized frames still cost something.
const entryOverhead = 160

// NewFrameCache returns a cache bounded to limit bytes of pixel data
// (plus a small per-entry overhead). A non-positive limit disables
// caching: Put becomes a no-op and every Get misses.
func NewFrameCache(limit int64) *FrameCache {
	c := &FrameCache{m: make(map[FrameKey]*cacheEntry), limit: limit}
	c.hot.next, c.hot.prev = &c.cold, &c.cold
	c.cold.prev, c.cold.next = &c.hot, &c.hot
	return c
}

// unlink removes e from the LRU list.
func (c *FrameCache) unlink(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

// pushHot inserts e at the most-recently-used end.
func (c *FrameCache) pushHot(e *cacheEntry) {
	e.prev = &c.hot
	e.next = c.hot.next
	e.prev.next = e
	e.next.prev = e
}

// entryBytes is the accounted size of an entry holding n pixels.
func entryBytes(n int) int64 { return int64(4*n) + entryOverhead }

// GetInto looks up k and, on a hit, copies the frame into dst (resized
// via pool.Grow, so a reused dst makes the copy allocation-free) and
// marks the entry most recently used. It reports whether k was cached.
//
//repro:allocfree
func (c *FrameCache) GetInto(k FrameKey, dst *img.Image) bool {
	c.mu.Lock()
	e := c.m[k]
	if e == nil {
		c.misses++
		c.mu.Unlock()
		return false
	}
	c.unlink(e)
	c.pushHot(e)
	dst.W, dst.H = e.w, e.h
	dst.Pix = pool.Grow(dst.Pix, len(e.pix)) //repro:allow allocfree: amortized destination growth, warm hits copy in place
	copy(dst.Pix, e.pix)
	c.hits++
	c.mu.Unlock()
	return true
}

// Contains reports whether k is cached, without touching LRU order or
// the hit/miss counters — a peek for planning which steps of a range
// still need rendering.
func (c *FrameCache) Contains(k FrameKey) bool {
	c.mu.Lock()
	_, ok := c.m[k]
	c.mu.Unlock()
	return ok
}

// Put copies src into the cache under k, evicting least-recently-used
// frames until it fits. A frame larger than the whole cache is not
// cached. Re-putting an existing key refreshes its pixels and recency.
func (c *FrameCache) Put(k FrameKey, src *img.Image) {
	need := entryBytes(len(src.Pix))
	if c.limit <= 0 || need > c.limit {
		return
	}
	c.mu.Lock()
	e := c.m[k]
	if e != nil {
		c.unlink(e)
		c.used -= entryBytes(len(e.pix))
	} else if c.freeList != nil {
		e = c.freeList
		c.freeList = e.next
		e.next = nil
	} else {
		e = &cacheEntry{}
	}
	for c.used+need > c.limit {
		victim := c.cold.prev
		c.evict(victim)
	}
	e.key = k
	e.w, e.h = src.W, src.H
	e.pix = pool.Grow(e.pix, len(src.Pix))
	copy(e.pix, src.Pix)
	c.m[k] = e
	c.pushHot(e)
	c.used += need
	c.mu.Unlock()
}

// evict removes victim from the map and LRU list and parks it on the
// free list, keeping its pixel buffer for reuse. Caller holds c.mu.
func (c *FrameCache) evict(victim *cacheEntry) {
	c.unlink(victim)
	delete(c.m, victim.key)
	c.used -= entryBytes(len(victim.pix))
	c.evictions++
	victim.prev = nil
	victim.next = c.freeList
	c.freeList = victim
}

// CacheStats is a point-in-time snapshot of the cache counters, exposed
// through /statsz.
type CacheStats struct {
	// Hits and Misses count GetInto outcomes since construction.
	Hits, Misses uint64
	// Evictions counts frames pushed out by the byte bound.
	Evictions uint64
	// Entries is the current cached-frame count.
	Entries int
	// Bytes and Limit are the accounted usage and the configured bound.
	Bytes, Limit int64
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookups.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the cache counters.
func (c *FrameCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: len(c.m), Bytes: c.used, Limit: c.limit,
	}
}
