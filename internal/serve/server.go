package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/img"
	"repro/internal/pool"
)

// Response marker headers (docs/serve.md). HeaderCache reports "hit" or
// "miss" for single-frame responses; HeaderDegraded marks frames built
// from degraded input ("stale"); HeaderStep echoes the served step; the
// view/TF hash headers identify which cache lineage served the frame.
const (
	// HeaderCache is "hit" when the frame came from the cache, "miss"
	// when it was rendered for this request.
	HeaderCache = "X-Quakeserve-Cache"
	// HeaderDegraded is "stale" on frames built from degraded input
	// (never cached; see docs/faults.md).
	HeaderDegraded = "X-Quakeserve-Degraded"
	// HeaderStep echoes the dataset timestep of a single-frame response.
	HeaderStep = "X-Quakeserve-Step"
	// HeaderViewHash and HeaderTFHash identify the request's view and
	// transfer-function lineage (display hashes, not cache keys).
	HeaderViewHash = "X-Quakeserve-View"
	// HeaderTFHash is the transfer-function display hash.
	HeaderTFHash = "X-Quakeserve-TF"
	// HeaderWidth and HeaderHeight carry the frame geometry of a raw
	// single-frame response body.
	HeaderWidth = "X-Quakeserve-Width"
	// HeaderHeight is the raw response body's frame height.
	HeaderHeight = "X-Quakeserve-Height"
)

// ServerConfig tunes the HTTP layer. The zero value serves: 2 in-flight
// renders, an 8-deep queue, a 2 s queue timeout.
type ServerConfig struct {
	// MaxInFlight bounds concurrent render executions (0 = 2). Size it
	// to the worker pools: each in-flight render owns a session whose
	// ranks split the machine.
	MaxInFlight int
	// MaxQueue bounds renders waiting for an in-flight slot (0 = 8,
	// negative = no queue: shed immediately when saturated).
	MaxQueue int
	// QueueTimeout is how long a queued render waits for a slot before
	// being shed with 429 (0 = 2 s).
	QueueTimeout time.Duration
}

// Server is the HTTP frame service over an Engine: GET /frame (single
// frame), GET /frames (chunked stream over a step range), /healthz and
// /statsz. Requests that can be answered from the frame cache bypass
// admission entirely; renders pass through the bounded in-flight +
// queue admission control and are shed with 429 (saturation) or 503
// (draining). Shutdown stops admitting, drains in-flight work, then
// closes the engine.
type Server struct {
	eng *Engine
	cfg ServerConfig
	mux *http.ServeMux

	tokens   chan struct{} // in-flight slots
	queue    chan struct{} // waiting slots
	draining atomic.Bool
	wg       sync.WaitGroup
	start    time.Time

	shed   atomic.Uint64
	served atomic.Uint64

	frames pool.Pool[img.Image]
	bufs   pool.Pool[respBuf]
}

// respBuf is a pooled response scratch: the wire-encoding buffer reused
// across requests.
type respBuf struct {
	b []byte
}

// NewServer wires a Server over eng. The engine is owned by the server
// from here on: Shutdown closes it.
func NewServer(eng *Engine, cfg ServerConfig) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 8
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = 2 * time.Second
	}
	s := &Server{
		eng:    eng,
		cfg:    cfg,
		mux:    http.NewServeMux(),
		tokens: make(chan struct{}, cfg.MaxInFlight),
		queue:  make(chan struct{}, cfg.MaxQueue),
		start:  time.Now(),
	}
	s.mux.HandleFunc("GET /frame", s.handleFrame)
	s.mux.HandleFunc("POST /frame", s.handleFrame)
	s.mux.HandleFunc("GET /frames", s.handleFrames)
	s.mux.HandleFunc("POST /frames", s.handleFrames)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the server: new renders are refused with 503, in-
// flight renders finish (or ctx expires), then the engine's sessions are
// closed. Safe to call once; /healthz reports draining immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.eng.Close()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// errShed and errDraining classify admission refusals.
var (
	errShed     = fmt.Errorf("serve: render capacity saturated")
	errDraining = fmt.Errorf("serve: server draining")
)

// admit claims an in-flight render slot, waiting in the bounded queue up
// to the queue timeout. It returns a release func on success, or
// errShed/errDraining (mapped to 429/503 by the handlers).
func (s *Server) admit(ctx context.Context) (func(), error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	select {
	case s.tokens <- struct{}{}:
		return func() { <-s.tokens }, nil
	default:
	}
	select {
	case s.queue <- struct{}{}:
		defer func() { <-s.queue }()
	default:
		return nil, errShed
	}
	timer := time.NewTimer(s.cfg.QueueTimeout)
	defer timer.Stop()
	select {
	case s.tokens <- struct{}{}:
		if s.draining.Load() {
			<-s.tokens
			return nil, errDraining
		}
		return func() { <-s.tokens }, nil
	case <-timer.C:
		return nil, errShed
	case <-ctx.Done():
		return nil, errShed
	}
}

// decodeRequest parses the request's query string (GET) or JSON body
// (POST) under the given range bound.
func (s *Server) decodeRequest(r *http.Request, maxRange int) (Request, error) {
	lim := Limits{Steps: s.eng.Steps(), MaxRange: maxRange}
	if r.Method == http.MethodPost {
		body, err := io.ReadAll(io.LimitReader(r.Body, MaxRawRequestLen+1))
		if err != nil {
			return Request{}, fmt.Errorf("serve: reading body: %w", err)
		}
		return ParseJSONBody(body, lim)
	}
	return ParseQuery(r.URL.RawQuery, lim)
}

// shedError maps an admission refusal onto its HTTP status (503 while
// draining, 429 for saturation) and counts the shed request.
func (s *Server) shedError(w http.ResponseWriter, err error) {
	s.shed.Add(1)
	switch err {
	case errDraining:
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, errShed.Error(), http.StatusTooManyRequests)
	}
}

// setFrameHeaders writes the marker headers common to every frame
// response.
func setFrameHeaders(w http.ResponseWriter, req Request) {
	h := w.Header()
	h.Set(HeaderViewHash, strconv.FormatUint(req.Cfg.ViewHash(), 16))
	h.Set(HeaderTFHash, strconv.FormatUint(req.Cfg.TFHash(), 16))
}

// handleFrame serves one frame: cache hits bypass admission; misses
// render through an admitted session. FormatRaw bodies are one wire
// frame; FormatPNG is a tone-mapped PNG.
func (s *Server) handleFrame(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeRequest(r, 1)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	setFrameHeaders(w, req)
	frame := s.frames.Get()
	defer s.frames.Put(frame)
	if s.eng.CachedInto(req.Cfg, req.Lo, frame) {
		s.writeSingleFrame(w, req, frame, false, true)
		return
	}
	release, err := s.admit(r.Context())
	if err != nil {
		s.shedError(w, err)
		return
	}
	s.wg.Add(1)
	defer s.wg.Done()
	defer release()
	var degraded bool
	err = s.eng.Render(req.Cfg, req.Lo, req.Hi, frame, func(step int, fr *img.Image, deg, cached bool) error {
		if fr != frame {
			// Frame came straight from a session ring (cold render):
			// copy into the pooled canvas so the write happens on owned
			// memory after the session releases.
			frame.W, frame.H = fr.W, fr.H
			frame.Pix = pool.Grow(frame.Pix, len(fr.Pix))
			copy(frame.Pix, fr.Pix)
		}
		degraded = deg
		return nil
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeSingleFrame(w, req, frame, degraded, false)
}

// writeSingleFrame encodes one frame onto the response.
func (s *Server) writeSingleFrame(w http.ResponseWriter, req Request, frame *img.Image, degraded, cached bool) {
	h := w.Header()
	if cached {
		h.Set(HeaderCache, "hit")
	} else {
		h.Set(HeaderCache, "miss")
	}
	if degraded {
		h.Set(HeaderDegraded, "stale")
	}
	h.Set(HeaderStep, strconv.Itoa(req.Lo))
	s.served.Add(1)
	if req.Format == FormatPNG {
		h.Set("Content-Type", "image/png")
		if err := frame.WritePNG(w); err != nil {
			// Headers are gone; nothing to do but drop the connection.
			return
		}
		return
	}
	h.Set("Content-Type", "application/octet-stream")
	h.Set(HeaderWidth, strconv.Itoa(frame.W))
	h.Set(HeaderHeight, strconv.Itoa(frame.H))
	buf := s.bufs.Get()
	buf.b = EncodeWireFrameInto(buf.b, req.Lo, frame, degraded)
	h.Set("Content-Length", strconv.Itoa(len(buf.b)))
	w.Write(buf.b)
	s.bufs.Put(buf)
}

// handleFrames streams a step range as concatenated wire frames,
// flushing after each so viewers render progressively. PNG format is
// rejected here (one body, many frames).
func (s *Server) handleFrames(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeRequest(r, s.eng.MaxWindow())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Format == FormatPNG {
		http.Error(w, "serve: png is single-frame only; use format=raw on /frames", http.StatusBadRequest)
		return
	}
	setFrameHeaders(w, req)

	allCached := true
	for step := req.Lo; step < req.Hi; step++ {
		if !s.eng.Cache().Contains(FrameKey{Cfg: req.Cfg, Step: step}) {
			allCached = false
			break
		}
	}
	release := func() {}
	if !allCached {
		rel, err := s.admit(r.Context())
		if err != nil {
			s.shedError(w, err)
			return
		}
		release = rel
	}
	s.wg.Add(1)
	defer s.wg.Done()
	defer release()

	frame := s.frames.Get()
	defer s.frames.Put(frame)
	buf := s.bufs.Get()
	defer s.bufs.Put(buf)
	w.Header().Set("Content-Type", "application/octet-stream")
	flusher, _ := w.(http.Flusher)
	err = s.eng.Render(req.Cfg, req.Lo, req.Hi, frame, func(step int, fr *img.Image, deg, cached bool) error {
		buf.b = EncodeWireFrameInto(buf.b, step, fr, deg)
		if _, err := w.Write(buf.b); err != nil {
			return err
		}
		s.served.Add(1)
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		// Mid-stream failure: the status line is already out; nothing
		// to signal beyond truncating the stream.
		return
	}
}

// handleHealthz reports liveness: 200 "ok" while serving, 503
// "draining" once shutdown began.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

// Stats is the /statsz payload: cache counters plus serving-side
// admission and throughput counters.
type Stats struct {
	// UptimeSec is seconds since the server was built.
	UptimeSec float64 `json:"uptime_sec"`
	// Cache is the frame-cache snapshot.
	Cache CacheStats `json:"cache"`
	// CacheHitRate is Cache's hit fraction, precomputed for dashboards.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// InFlight is the number of renders currently holding a slot.
	InFlight int `json:"in_flight"`
	// Queued is the number of renders waiting for a slot.
	Queued int `json:"queued"`
	// Shed counts requests refused by admission control (429s).
	Shed uint64 `json:"shed"`
	// ServedFrames counts frames written to responses (hits + renders).
	ServedFrames uint64 `json:"served_frames"`
	// RenderedFrames counts frames produced by pipeline runs.
	RenderedFrames uint64 `json:"rendered_frames"`
	// RendersPerSec is RenderedFrames / UptimeSec.
	RendersPerSec float64 `json:"renders_per_sec"`
	// IdleSessions and ColdSessions describe the session pool.
	IdleSessions int `json:"idle_sessions"`
	// ColdSessions counts sessions ever built.
	ColdSessions uint64 `json:"cold_sessions"`
	// Draining is true once shutdown began.
	Draining bool `json:"draining"`
}

// Snapshot assembles the current Stats.
func (s *Server) Snapshot() Stats {
	cs := s.eng.Cache().Stats()
	up := time.Since(s.start).Seconds()
	st := Stats{
		UptimeSec:      up,
		Cache:          cs,
		CacheHitRate:   cs.HitRate(),
		InFlight:       len(s.tokens),
		Queued:         len(s.queue),
		Shed:           s.shed.Load(),
		ServedFrames:   s.served.Load(),
		RenderedFrames: s.eng.RenderedFrames(),
		IdleSessions:   s.eng.IdleSessions(),
		ColdSessions:   s.eng.ColdSessions(),
		Draining:       s.draining.Load(),
	}
	if up > 0 {
		st.RendersPerSec = float64(st.RenderedFrames) / up
	}
	return st
}

// handleStatsz serves the JSON stats snapshot.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
}
