// Package serve wraps the batch visualization pipeline (internal/core) in
// a long-running frame-serving service: an Engine that owns the dataset,
// renders frame requests keyed on (view, transfer function, timestep)
// through per-session pipeline instances, and fills a size-bounded LRU
// frame cache; and an HTTP Server exposing single-frame and streaming
// endpoints with admission control, graceful drain, and /healthz +
// /statsz observability. docs/serve.md documents the endpoints, the cache
// key semantics, and the session-ownership rules this package adds on top
// of docs/ownership.md.
//
// The layering mirrors the repository's ownership discipline: every
// concurrent request that has to render owns a whole session — a
// RealWorkload with its private scratches, worker pools, and frame ring —
// so sessions never share mutable state; the cache is the only cross-
// session structure, and it traffics exclusively in owned copies (copy-in
// on fill via the ring's copy-out-or-release contract, copy-out on hit
// into caller-owned canvases), so a cache hit is allocation-free at
// steady state.
package serve

import (
	"hash/fnv"
	"math"
)

// RenderConfig identifies everything about a frame request except the
// timestep: image geometry, camera, and transfer function. It is a
// comparable value used directly as the session-pool key and, combined
// with a step, as the frame-cache key — so cache correctness rests on Go
// map equality of the exact parameters, never on hash comparison (the
// FNV hashes below exist only for headers, logs and stats). Engine-wide
// rendering options (enhancement, lighting, quantization range) are
// deliberately not part of the key: they are fixed per Engine, so all
// sessions agree on them.
type RenderConfig struct {
	// Width and Height are the frame geometry in pixels.
	Width, Height int
	// Orbit selects the orbit camera (render.OrbitView) with the Az/El
	// angles below; false uses the dataset's default view.
	Orbit bool
	// Az and El are the orbit camera's azimuth and elevation in degrees.
	// Both are zero when Orbit is false, so default-view configs compare
	// equal regardless of how they were built.
	Az, El float64
	// TF names the transfer-function preset ("seismic", "gray", "hot");
	// empty means the seismic default. The request decoder rejects
	// unknown names so misspellings cannot silently alias the default
	// preset's cache entries.
	TF string
}

// FrameKey is the frame-cache key: one rendered frame is identified by
// its full render configuration plus the dataset timestep.
type FrameKey struct {
	// Cfg is the complete render configuration of the cached frame.
	Cfg RenderConfig
	// Step is the dataset timestep (not a window-relative step).
	Step int
}

// ViewHash returns a stable 64-bit FNV-1a hash of the view-defining
// fields (geometry + camera), for marker headers and stats. Never used
// for cache lookups — those compare full keys.
func (c RenderConfig) ViewHash() uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(uint64(c.Width))
	put(uint64(c.Height))
	if c.Orbit {
		put(1)
	} else {
		put(0)
	}
	put(math.Float64bits(c.Az))
	put(math.Float64bits(c.El))
	return h.Sum64()
}

// TFHash returns a stable 64-bit FNV-1a hash of the transfer-function
// name, for marker headers and stats (cache lookups compare the name
// itself).
func (c RenderConfig) TFHash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(c.TF))
	return h.Sum64()
}
