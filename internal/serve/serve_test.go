package serve_test

import (
	"encoding/json"
	"fmt"
	"image/png"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/img"
	"repro/internal/mesh"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/quake"
	"repro/internal/render"
	"repro/internal/serve"
)

// --- Shared fixtures --------------------------------------------------------

type basinish struct{}

func (basinish) At(p [3]float64) mesh.Material {
	vs := 900 + 2000*p[2]
	if d := (p[0]-0.5)*(p[0]-0.5) + (p[1]-0.5)*(p[1]-0.5) + p[2]*p[2]; d < 0.09 {
		vs = 400
	}
	return mesh.Material{Rho: 2200, Vs: vs, Vp: 1.8 * vs}
}

// buildDataset produces a small real dataset in a fresh store (the same
// fixture the core suite uses, so serve-layer frames are comparable to
// the pinned pipeline behavior).
func buildDataset(t testing.TB, steps int) pfs.Store {
	t.Helper()
	cfg := mesh.Config{Domain: 2000, FMax: 1.2, PointsPerWave: 4, MaxLevel: 4, MinLevel: 2}
	msh, err := mesh.Generate(cfg, basinish{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := quake.NewSolver(msh, quake.DefaultSolverConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.AddSource(quake.PointSource{Node: s.NearestNode([3]float64{0.5, 0.5, 0.3}),
		Dir: [3]float64{0, 0, 1}, Amplitude: 1e12, Freq: 2})
	st := pfs.NewMemStore()
	if _, err := quake.ProduceDataset(s, st, quake.RunConfig{Steps: steps * 4, OutEvery: 4}); err != nil {
		t.Fatal(err)
	}
	return st
}

// directOptions builds the batch-pipeline options equivalent to what the
// engine derives from cfg, WITHOUT pinning vmax — the reference run scans
// the dataset itself, so agreement with served frames also proves the
// engine's scan matches the workload's.
func directOptions(cfg serve.RenderConfig, enhance bool) core.Options {
	o := core.DefaultOptions(cfg.Width, cfg.Height)
	if cfg.Orbit {
		o.View = render.OrbitView(cfg.Width, cfg.Height, cfg.Az, cfg.El)
	}
	o.TFName = cfg.TF
	o.Enhancement = enhance
	return o
}

// directFrames renders every dataset step with a deliberately different
// layout than the serving engine uses and returns the frames. These are
// the bit-exactness references for everything the server sends.
func directFrames(t testing.TB, store pfs.Store, cfg serve.RenderConfig, enhance bool) []*img.Image {
	t.Helper()
	l := core.Layout{Groups: 2, IPsPerGroup: 1, Renderers: 2, Outputs: 1}
	w, err := core.NewRealWorkload(l, directOptions(cfg, enhance), store)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	p, err := core.NewPipeline(l, w)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var runErr error
	mpi.RunReal(l.WorldSize(), func(c *mpi.Comm) {
		if err := p.Run(c); err != nil {
			mu.Lock()
			if runErr == nil {
				runErr = err
			}
			mu.Unlock()
		}
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	frames := make([]*img.Image, w.Steps())
	for i := range frames {
		frames[i] = w.Frame(i)
		if frames[i] == nil {
			t.Fatalf("reference run missing frame %d", i)
		}
	}
	return frames
}

// newTestEngine builds an engine over store with test-friendly defaults.
func newTestEngine(t testing.TB, store pfs.Store, ecfg serve.EngineConfig) *serve.Engine {
	t.Helper()
	eng, err := serve.NewEngine(store, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// cfgQuery renders cfg as /frame query parameters.
func cfgQuery(cfg serve.RenderConfig) string {
	q := fmt.Sprintf("w=%d&h=%d", cfg.Width, cfg.Height)
	if cfg.Orbit {
		q += fmt.Sprintf("&view=orbit&az=%g&el=%g", cfg.Az, cfg.El)
	}
	if cfg.TF != "" {
		q += "&tf=" + cfg.TF
	}
	return q
}

// newTestHTTPServer starts an httptest server over h and ties its
// lifetime to the test.
func newTestHTTPServer(t testing.TB, h http.Handler) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

// getFrameErr fetches /frame?step=N for cfg and decodes the wire
// response, returning errors instead of failing the test — safe to call
// from load-generator goroutines.
func getFrameErr(ts *httptest.Server, cfg serve.RenderConfig, step int) (*img.Image, error) {
	resp, err := ts.Client().Get(fmt.Sprintf("%s/frame?step=%d&%s", ts.URL, step, cfgQuery(cfg)))
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /frame step=%d: %s: %s", step, resp.Status, body)
	}
	gotStep, frame, _, rest, err := serve.DecodeWireFrame(body)
	if err != nil {
		return nil, err
	}
	if gotStep != step || len(rest) != 0 {
		return nil, fmt.Errorf("wire frame: step %d (want %d), %d trailing bytes", gotStep, step, len(rest))
	}
	return frame, nil
}

// getFrame fetches /frame?step=N for cfg and decodes the wire response.
func getFrame(t testing.TB, ts *httptest.Server, cfg serve.RenderConfig, step int) (*img.Image, *http.Response) {
	t.Helper()
	resp, err := ts.Client().Get(fmt.Sprintf("%s/frame?step=%d&%s", ts.URL, step, cfgQuery(cfg)))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /frame step=%d: %s: %s", step, resp.Status, body)
	}
	gotStep, frame, _, rest, err := serve.DecodeWireFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	if gotStep != step || len(rest) != 0 {
		t.Fatalf("wire frame: step %d (want %d), %d trailing bytes", gotStep, step, len(rest))
	}
	return frame, resp
}

// --- Bit-exactness ----------------------------------------------------------

// TestServeFrameBitExact pins the tentpole's correctness claim: frames
// served over HTTP — cold render, then cache hit — are bit-identical to a
// direct batch-pipeline render of the same request with a different
// layout, with and without temporal enhancement.
func TestServeFrameBitExact(t *testing.T) {
	store := buildDataset(t, 3)
	for _, enhance := range []bool{false, true} {
		cfg := serve.RenderConfig{Width: 40, Height: 40, Orbit: true, Az: 30, El: 55, TF: "hot"}
		want := directFrames(t, store, cfg, enhance)
		eng := newTestEngine(t, store, serve.EngineConfig{Enhancement: enhance})
		srv := serve.NewServer(eng, serve.ServerConfig{})
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		for step := 0; step < 3; step++ {
			cold, resp := getFrame(t, ts, cfg, step)
			if got := resp.Header.Get(serve.HeaderCache); got != "miss" {
				t.Errorf("enhance=%v step %d: first fetch cache header = %q, want miss", enhance, step, got)
			}
			if d := img.MaxAbsDiff(want[step], cold); d != 0 {
				t.Errorf("enhance=%v step %d: cold frame differs from direct render (max diff %v)", enhance, step, d)
			}
			warm, resp := getFrame(t, ts, cfg, step)
			if got := resp.Header.Get(serve.HeaderCache); got != "hit" {
				t.Errorf("enhance=%v step %d: second fetch cache header = %q, want hit", enhance, step, got)
			}
			if d := img.MaxAbsDiff(want[step], warm); d != 0 {
				t.Errorf("enhance=%v step %d: cached frame differs from direct render (max diff %v)", enhance, step, d)
			}
		}
	}
}

// TestServeFramesStreamBitExact pins the streaming endpoint: a range
// request returns every step, in order, each bit-identical to the direct
// render, and a re-request is served fully from cache.
func TestServeFramesStreamBitExact(t *testing.T) {
	store := buildDataset(t, 4)
	cfg := serve.RenderConfig{Width: 32, Height: 32}
	want := directFrames(t, store, cfg, false)
	eng := newTestEngine(t, store, serve.EngineConfig{})
	srv := serve.NewServer(eng, serve.ServerConfig{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	for round := 0; round < 2; round++ {
		resp, err := ts.Client().Get(fmt.Sprintf("%s/frames?lo=0&hi=4&%s", ts.URL, cfgQuery(cfg)))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: %s: %s", round, resp.Status, body)
		}
		for step := 0; step < 4; step++ {
			gotStep, frame, degraded, rest, err := serve.DecodeWireFrame(body)
			if err != nil {
				t.Fatalf("round %d frame %d: %v", round, step, err)
			}
			if gotStep != step || degraded {
				t.Fatalf("round %d: frame %d decoded as step %d degraded=%v", round, step, gotStep, degraded)
			}
			if d := img.MaxAbsDiff(want[step], frame); d != 0 {
				t.Errorf("round %d step %d: stream frame differs (max diff %v)", round, step, d)
			}
			body = rest
		}
		if len(body) != 0 {
			t.Fatalf("round %d: %d trailing bytes after last frame", round, len(body))
		}
	}
	if st := eng.Cache().Stats(); st.Hits == 0 {
		t.Error("second stream round produced no cache hits")
	}
}

// TestServePNGFrame pins the png format: a decodable PNG with the
// requested geometry.
func TestServePNGFrame(t *testing.T) {
	store := buildDataset(t, 2)
	eng := newTestEngine(t, store, serve.EngineConfig{})
	srv := serve.NewServer(eng, serve.ServerConfig{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	resp, err := ts.Client().Get(ts.URL + "/frame?step=0&w=32&h=24&format=png")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/png" {
		t.Fatalf("Content-Type = %q", ct)
	}
	im, err := png.Decode(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if b := im.Bounds(); b.Dx() != 32 || b.Dy() != 24 {
		t.Fatalf("png is %dx%d, want 32x24", b.Dx(), b.Dy())
	}
}

// TestServeBadRequests pins the strict decoder through the HTTP layer:
// every malformed request is a clean 400, never a render.
func TestServeBadRequests(t *testing.T) {
	store := buildDataset(t, 2)
	eng := newTestEngine(t, store, serve.EngineConfig{})
	srv := serve.NewServer(eng, serve.ServerConfig{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	bad := []string{
		"/frame",                          // no step
		"/frame?step=9",                   // outside dataset
		"/frame?step=-1",                  // negative
		"/frame?step=0&w=4",               // too small
		"/frame?step=0&w=99999",           // too large
		"/frame?step=0&view=orbit&el=200", // bad elevation
		"/frame?step=0&az=30",             // az without orbit
		"/frame?step=0&view=squint",       // unknown view
		"/frame?step=0&tf=neon",           // unknown TF
		"/frame?step=0&format=bmp",        // unknown format
		"/frame?step=0&bogus=1",           // unknown key
		"/frame?lo=0&hi=2",                // range on single-frame endpoint
		"/frame?step=0&step=1",            // repeated key
		"/frame?step=0&view=orbit&az=NaN", // non-finite angle
		"/frames?lo=0&hi=2&format=png",    // png is single-frame only
		"/frames?lo=1&hi=1",               // empty range
	}
	for _, path := range bad {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: %s, want 400", path, resp.Status)
		}
	}
	if got := eng.RenderedFrames(); got != 0 {
		t.Errorf("bad requests triggered %d renders", got)
	}
}

// TestServeJSONBody pins the POST/JSON request path end to end.
func TestServeJSONBody(t *testing.T) {
	store := buildDataset(t, 2)
	cfg := serve.RenderConfig{Width: 32, Height: 32, TF: "gray"}
	want := directFrames(t, store, cfg, false)
	eng := newTestEngine(t, store, serve.EngineConfig{})
	srv := serve.NewServer(eng, serve.ServerConfig{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	resp, err := ts.Client().Post(ts.URL+"/frame", "application/json",
		strings.NewReader(`{"step": 1, "width": 32, "height": 32, "tf": "gray"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s", resp.Status, body)
	}
	step, frame, _, _, err := serve.DecodeWireFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	if step != 1 {
		t.Fatalf("decoded step %d, want 1", step)
	}
	if d := img.MaxAbsDiff(want[1], frame); d != 0 {
		t.Errorf("JSON-requested frame differs from direct render (max diff %v)", d)
	}
	resp, err = ts.Client().Post(ts.URL+"/frame", "application/json",
		strings.NewReader(`{"step": 0, "zoom": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown JSON field: %s, want 400", resp.Status)
	}
}

// TestServeHealthzStatsz pins the observability endpoints: liveness flips
// to 503 on drain, and the stats snapshot carries coherent counters.
func TestServeHealthzStatsz(t *testing.T) {
	store := buildDataset(t, 2)
	eng := newTestEngine(t, store, serve.EngineConfig{})
	srv := serve.NewServer(eng, serve.ServerConfig{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}

	cfg := serve.RenderConfig{Width: 32, Height: 32}
	getFrame(t, ts, cfg, 0) // miss + render
	getFrame(t, ts, cfg, 0) // hit

	resp, err = ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits != 1 || st.RenderedFrames != 1 || st.ServedFrames != 2 {
		t.Errorf("stats = hits %d rendered %d served %d, want 1/1/2", st.Cache.Hits, st.RenderedFrames, st.ServedFrames)
	}
	if st.CacheHitRate <= 0 || st.CacheHitRate > 1 {
		t.Errorf("hit rate %v out of range", st.CacheHitRate)
	}
	if st.ColdSessions != 1 || st.IdleSessions != 1 {
		t.Errorf("sessions: cold %d idle %d, want 1/1", st.ColdSessions, st.IdleSessions)
	}
}
