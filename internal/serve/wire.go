package serve

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/img"
)

// The streaming wire format: each frame is a fixed 20-byte header —
// magic "QSF1", then step, width, height and flags as little-endian
// uint32 — followed by width*height*4 float32 pixels (RGBA planes
// interleaved exactly as img.Image.Pix), little-endian. Frames
// concatenate back to back on a /frames stream; a single /frame response
// body in FormatRaw is exactly one wire frame. Encoding appends into a
// caller-owned buffer so the steady-state serve path reuses one buffer
// per request.

const (
	// WireMagic opens every wire frame.
	WireMagic = "QSF1"
	// WireHeaderSize is the fixed frame-header length in bytes.
	WireHeaderSize = 20
	// WireFlagDegraded marks a frame built from degraded (stale or
	// dropped) input — the stream equivalent of the X-Quakeserve-Degraded
	// response header.
	WireFlagDegraded = 1 << 0
)

// maxWirePixels bounds the pixel payload DecodeWireFrame will allocate
// for, so a corrupt header cannot demand an arbitrary allocation.
const maxWirePixels = MaxFrameDim * MaxFrameDim

// AppendWireFrame appends one encoded frame to dst and returns the
// extended slice (append semantics: steady-state reuse of a sized buffer
// allocates nothing).
func AppendWireFrame(dst []byte, step int, frame *img.Image, degraded bool) []byte {
	var hdr [WireHeaderSize]byte
	copy(hdr[:4], WireMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(step))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(frame.W))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(frame.H))
	var flags uint32
	if degraded {
		flags |= WireFlagDegraded
	}
	binary.LittleEndian.PutUint32(hdr[16:], flags)
	dst = append(dst, hdr[:]...)
	for _, p := range frame.Pix {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(p))
		dst = append(dst, b[:]...)
	}
	return dst
}

// EncodeWireFrameInto encodes one frame into buf's storage (grown as
// needed, reused otherwise) and returns the encoded slice.
func EncodeWireFrameInto(buf []byte, step int, frame *img.Image, degraded bool) []byte {
	return AppendWireFrame(buf[:0], step, frame, degraded)
}

// DecodeWireFrame decodes the first wire frame in b into a fresh image,
// returning the step, image, degraded flag and the remaining bytes.
// It is the client-side counterpart of AppendWireFrame, used by the
// test suite and example clients; allocation per call is fine there.
func DecodeWireFrame(b []byte) (step int, frame *img.Image, degraded bool, rest []byte, err error) {
	if len(b) < WireHeaderSize {
		return 0, nil, false, nil, fmt.Errorf("serve: wire frame shorter than header: %d bytes", len(b))
	}
	if string(b[:4]) != WireMagic {
		return 0, nil, false, nil, fmt.Errorf("serve: bad wire magic %q", b[:4])
	}
	step = int(int32(binary.LittleEndian.Uint32(b[4:])))
	w := int(binary.LittleEndian.Uint32(b[8:]))
	h := int(binary.LittleEndian.Uint32(b[12:]))
	flags := binary.LittleEndian.Uint32(b[16:])
	if w <= 0 || h <= 0 || w*h > maxWirePixels {
		return 0, nil, false, nil, fmt.Errorf("serve: wire frame size %dx%d out of range", w, h)
	}
	n := 4 * w * h
	body := b[WireHeaderSize:]
	if len(body) < 4*n {
		return 0, nil, false, nil, fmt.Errorf("serve: wire frame truncated: have %d of %d payload bytes", len(body), 4*n)
	}
	frame = img.New(w, h)
	for i := range frame.Pix {
		frame.Pix[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
	}
	return step, frame, flags&WireFlagDegraded != 0, body[4*n:], nil
}
