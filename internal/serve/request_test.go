package serve_test

import (
	"strings"
	"testing"

	"repro/internal/img"
	"repro/internal/serve"
)

var testLimits = serve.Limits{Steps: 8, MaxRange: 4}

// TestParseQuery pins the strict query decoder: accepted shapes produce
// the exact Request, and each reject rule fires.
func TestParseQuery(t *testing.T) {
	good := []struct {
		raw  string
		want serve.Request
	}{
		{"step=3", serve.Request{
			Cfg: serve.RenderConfig{Width: 256, Height: 256},
			Lo:  3, Hi: 4, Format: serve.FormatRaw}},
		{"lo=2&hi=5&w=64&h=32&tf=hot&format=png", serve.Request{
			Cfg: serve.RenderConfig{Width: 64, Height: 32, TF: "hot"},
			Lo:  2, Hi: 5, Format: serve.FormatPNG}},
		{"step=0&view=orbit&az=-30.5&el=55", serve.Request{
			Cfg: serve.RenderConfig{Width: 256, Height: 256, Orbit: true, Az: -30.5, El: 55},
			Lo:  0, Hi: 1, Format: serve.FormatRaw}},
		{"step=0&view=default&tf=seismic", serve.Request{
			Cfg: serve.RenderConfig{Width: 256, Height: 256, TF: "seismic"},
			Lo:  0, Hi: 1, Format: serve.FormatRaw}},
	}
	for _, tc := range good {
		got, err := serve.ParseQuery(tc.raw, testLimits)
		if err != nil {
			t.Errorf("ParseQuery(%q): %v", tc.raw, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseQuery(%q) = %+v, want %+v", tc.raw, got, tc.want)
		}
	}
	bad := []string{
		"",                 // no step
		"step=8",           // past dataset
		"step=-1",          // negative
		"step=2&lo=1&hi=3", // step and range
		"lo=2",             // lo without hi
		"lo=3&hi=3",        // empty range
		"lo=0&hi=5",        // past MaxRange
		"step=0&w=7",       // below MinFrameDim
		"step=0&h=2049",    // above MaxFrameDim
		"step=0&az=10",     // az without orbit
		"step=0&view=orbit&az=361",
		"step=0&view=orbit&el=-1",
		"step=0&view=orbit&az=NaN",
		"step=0&view=orbit&az=Inf",
		"step=0&view=fisheye",
		"step=0&tf=neon",
		"step=0&format=jpeg",
		"step=0&step=1", // repeated key
		"step=0&x=1",    // unknown key
		"step=0&w=1e3",  // non-integer int
		"step=;",        // unparsable int
		"%zz",           // bad escaping
		"step=0&" + strings.Repeat("a", serve.MaxRawRequestLen), // oversized
	}
	for _, raw := range bad {
		if _, err := serve.ParseQuery(raw, testLimits); err == nil {
			t.Errorf("ParseQuery(%q) accepted", raw)
		}
	}
}

// TestParseJSONBody pins the JSON decoder: same validation rules as the
// query path, plus JSON-specific strictness.
func TestParseJSONBody(t *testing.T) {
	got, err := serve.ParseJSONBody([]byte(`{"lo": 1, "hi": 4, "width": 48, "view": "orbit", "az": 30, "el": 10, "tf": "gray"}`), testLimits)
	if err != nil {
		t.Fatal(err)
	}
	want := serve.Request{
		Cfg: serve.RenderConfig{Width: 48, Height: 256, Orbit: true, Az: 30, El: 10, TF: "gray"},
		Lo:  1, Hi: 4, Format: serve.FormatRaw,
	}
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
	bad := []string{
		``,
		`{}`,
		`{"step": 0, "zoom": 2}`,  // unknown field
		`{"step": 0} {"step": 1}`, // trailing JSON
		`{"step": "0"}`,           // wrong type
		`[0]`,                     // wrong shape
		`{"step": 0, "az": 4}`,    // az without orbit
	}
	for _, raw := range bad {
		if _, err := serve.ParseJSONBody([]byte(raw), testLimits); err == nil {
			t.Errorf("ParseJSONBody(%q) accepted", raw)
		}
	}
}

// TestConfigHashesStable pins that the display hashes separate what they
// must: different views and different TFs hash differently, and the hash
// of a config is deterministic.
func TestConfigHashesStable(t *testing.T) {
	a := serve.RenderConfig{Width: 64, Height: 64}
	b := serve.RenderConfig{Width: 64, Height: 64, Orbit: true, Az: 10, El: 20}
	if a.ViewHash() == b.ViewHash() {
		t.Error("distinct views share a view hash")
	}
	if a.ViewHash() != a.ViewHash() {
		t.Error("view hash not deterministic")
	}
	c, d := a, a
	c.TF, d.TF = "hot", "gray"
	if c.TFHash() == d.TFHash() {
		t.Error("distinct TFs share a TF hash")
	}
}

// TestWireFrameRoundTrip pins the wire codec: encode/decode round-trips
// pixels, step and the degraded flag exactly, and corrupt inputs error
// without over-allocating.
func TestWireFrameRoundTrip(t *testing.T) {
	frame := mkFrame(5, 3, 0)
	for i := range frame.Pix {
		frame.Pix[i] = float32(i) * 0.25
	}
	for _, degraded := range []bool{false, true} {
		b := serve.AppendWireFrame(nil, 7, frame, degraded)
		if len(b) != serve.WireHeaderSize+4*len(frame.Pix) {
			t.Fatalf("encoded %d bytes", len(b))
		}
		step, got, deg, rest, err := serve.DecodeWireFrame(b)
		if err != nil {
			t.Fatal(err)
		}
		if step != 7 || deg != degraded || len(rest) != 0 {
			t.Fatalf("decoded step=%d degraded=%v rest=%d", step, deg, len(rest))
		}
		if d := img.MaxAbsDiff(frame, got); d != 0 {
			t.Errorf("pixels differ after round trip (max diff %v)", d)
		}
	}

	two := serve.AppendWireFrame(serve.AppendWireFrame(nil, 0, frame, false), 1, frame, true)
	_, _, _, rest, err := serve.DecodeWireFrame(two)
	if err != nil {
		t.Fatal(err)
	}
	step, _, deg, rest, err := serve.DecodeWireFrame(rest)
	if err != nil || step != 1 || !deg || len(rest) != 0 {
		t.Fatalf("second concatenated frame: step=%d deg=%v rest=%d err=%v", step, deg, len(rest), err)
	}

	bad := [][]byte{
		nil,
		[]byte("QSF1"), // short header
		[]byte("NOPE\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"), // bad magic
		serve.AppendWireFrame(nil, 0, frame, false)[:serve.WireHeaderSize+3],           // truncated payload
	}
	// A header promising a huge frame must be rejected by the size bound,
	// not attempted.
	huge := serve.AppendWireFrame(nil, 0, frame, false)[:serve.WireHeaderSize]
	huge = append([]byte(nil), huge...)
	huge[8], huge[9], huge[10], huge[11] = 0xff, 0xff, 0xff, 0x7f
	bad = append(bad, huge)
	for i, b := range bad {
		if _, _, _, _, err := serve.DecodeWireFrame(b); err == nil {
			t.Errorf("bad input %d accepted", i)
		}
	}
}
