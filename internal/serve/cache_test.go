package serve_test

import (
	"testing"

	"repro/internal/img"
	"repro/internal/serve"
)

// mkFrame returns a w×h frame with every channel set to fill.
func mkFrame(w, h int, fill float32) *img.Image {
	m := img.New(w, h)
	for i := range m.Pix {
		m.Pix[i] = fill
	}
	return m
}

// key builds a cache key distinguished only by step.
func key(step int) serve.FrameKey {
	return serve.FrameKey{Cfg: serve.RenderConfig{Width: 8, Height: 8}, Step: step}
}

// frameBytes is the accounted cost of one 8×8 test frame (pixels +
// per-entry overhead), mirrored from the cache's accounting.
const frameBytes = 4*4*8*8 + 160

// TestFrameCacheLRUEviction pins strict byte-bounded LRU: a third frame
// in a two-frame cache evicts the least recently used one.
func TestFrameCacheLRUEviction(t *testing.T) {
	c := serve.NewFrameCache(2 * frameBytes)
	c.Put(key(0), mkFrame(8, 8, 0))
	c.Put(key(1), mkFrame(8, 8, 1))
	c.Put(key(2), mkFrame(8, 8, 2))
	if c.Contains(key(0)) {
		t.Error("oldest frame survived eviction")
	}
	var dst img.Image
	for _, step := range []int{1, 2} {
		if !c.GetInto(key(step), &dst) {
			t.Fatalf("frame %d missing", step)
		}
		if dst.Pix[0] != float32(step) {
			t.Errorf("frame %d holds %v", step, dst.Pix[0])
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("entries %d evictions %d, want 2/1", st.Entries, st.Evictions)
	}
	if st.Bytes != 2*frameBytes {
		t.Errorf("accounted %d bytes, want %d", st.Bytes, 2*frameBytes)
	}
}

// TestFrameCacheGetBumpsRecency pins that a hit protects its entry: after
// touching the older frame, the other one is the eviction victim.
func TestFrameCacheGetBumpsRecency(t *testing.T) {
	c := serve.NewFrameCache(2 * frameBytes)
	c.Put(key(0), mkFrame(8, 8, 0))
	c.Put(key(1), mkFrame(8, 8, 1))
	var dst img.Image
	if !c.GetInto(key(0), &dst) {
		t.Fatal("frame 0 missing")
	}
	c.Put(key(2), mkFrame(8, 8, 2))
	if !c.Contains(key(0)) || c.Contains(key(1)) {
		t.Errorf("victim after bump: have0=%v have1=%v, want true/false", c.Contains(key(0)), c.Contains(key(1)))
	}
}

// TestFrameCachePutRefreshes pins that re-putting a key replaces its
// pixels without growing the entry count or double-accounting bytes.
func TestFrameCachePutRefreshes(t *testing.T) {
	c := serve.NewFrameCache(4 * frameBytes)
	c.Put(key(0), mkFrame(8, 8, 1))
	c.Put(key(0), mkFrame(8, 8, 7))
	var dst img.Image
	if !c.GetInto(key(0), &dst) || dst.Pix[0] != 7 {
		t.Fatalf("refreshed frame reads %v", dst.Pix)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != frameBytes {
		t.Errorf("entries %d bytes %d after refresh, want 1/%d", st.Entries, st.Bytes, frameBytes)
	}
}

// TestFrameCacheBounds pins the edge rules: an oversized frame is not
// cached, and a disabled cache (limit <= 0) never stores anything.
func TestFrameCacheBounds(t *testing.T) {
	c := serve.NewFrameCache(frameBytes - 1)
	c.Put(key(0), mkFrame(8, 8, 1))
	if c.Contains(key(0)) {
		t.Error("frame larger than the cache was cached")
	}
	off := serve.NewFrameCache(-1)
	off.Put(key(0), mkFrame(8, 8, 1))
	var dst img.Image
	if off.GetInto(key(0), &dst) {
		t.Error("disabled cache returned a hit")
	}
}

// TestFrameCacheCopiesBothWays pins the ownership contract: mutating the
// source after Put, or the destination after GetInto, must not affect
// the cached pixels.
func TestFrameCacheCopiesBothWays(t *testing.T) {
	c := serve.NewFrameCache(4 * frameBytes)
	src := mkFrame(8, 8, 3)
	c.Put(key(0), src)
	src.Pix[0] = 99
	var a img.Image
	if !c.GetInto(key(0), &a) || a.Pix[0] != 3 {
		t.Fatalf("cache aliased the source: %v", a.Pix[0])
	}
	a.Pix[0] = 42
	var b img.Image
	if !c.GetInto(key(0), &b) || b.Pix[0] != 3 {
		t.Fatalf("cache aliased a destination: %v", b.Pix[0])
	}
}
