package serve_test

import (
	"context"
	"io"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/img"
	"repro/internal/mpi"
	"repro/internal/pfs"
	"repro/internal/quake"
	"repro/internal/serve"
)

// scanVMaxOf returns the engine-computed quantization range of a clean
// store, for pinning FixedVMax on engines whose store injects faults
// (the startup scan would otherwise trip them).
func scanVMaxOf(t *testing.T, store pfs.Store) float32 {
	t.Helper()
	eng := newTestEngine(t, store, serve.EngineConfig{})
	v := eng.VMax()
	eng.Close()
	return v
}

// TestChaosServeDegradedNotCached pins the degraded-frame contract under
// permanent read faults: the frame is served with the stale marker
// header, is never cached (every fetch re-renders), and clean steps are
// unaffected and cache normally.
func TestChaosServeDegradedNotCached(t *testing.T) {
	store := buildDataset(t, 3)
	vmax := scanVMaxOf(t, store)
	faulty := faultinject.Wrap(store, faultinject.Config{
		Seed:       42,
		PPermanent: 1,
		Match:      func(name string) bool { return name == quake.StepObject(1) },
	})
	feng := newTestEngine(t, faulty, serve.EngineConfig{FixedVMax: vmax, Tolerate: true})
	srv := serve.NewServer(feng, serve.ServerConfig{})
	ts := newTestHTTPServer(t, srv)

	for round := 0; round < 2; round++ {
		_, resp := getFrame(t, ts, serve.RenderConfig{Width: 32, Height: 32}, 1)
		if got := resp.Header.Get(serve.HeaderDegraded); got != "stale" {
			t.Fatalf("round %d: degraded header = %q, want stale", round, got)
		}
		if got := resp.Header.Get(serve.HeaderCache); got != "miss" {
			t.Errorf("round %d: degraded frame served from cache (%q), must never be cached", round, got)
		}
	}
	for round := 0; round < 2; round++ {
		_, resp := getFrame(t, ts, serve.RenderConfig{Width: 32, Height: 32}, 0)
		if got := resp.Header.Get(serve.HeaderDegraded); got != "" {
			t.Errorf("round %d: clean step carries degraded header %q", round, got)
		}
		want := "miss"
		if round > 0 {
			want = "hit"
		}
		if got := resp.Header.Get(serve.HeaderCache); got != want {
			t.Errorf("round %d: clean step cache header = %q, want %q", round, got, want)
		}
	}
}

// TestChaosServeTransientsHealed pins the recovery stack under the
// server: transient faults and short reads below MPI-IO are healed by
// the retry store, so responses are clean, unmarked, and bit-exact
// against a fault-free direct render.
func TestChaosServeTransientsHealed(t *testing.T) {
	store := buildDataset(t, 3)
	cfg := serve.RenderConfig{Width: 32, Height: 32}
	want := directFrames(t, store, cfg, false)
	faulty := faultinject.Wrap(store, faultinject.Config{
		Seed:          7,
		PTransient:    0.3,
		PShortRead:    0.1,
		FaultAttempts: 2,
	})
	healed := pfs.NewRetryStore(faulty, pfs.RetryConfig{Seed: 7})
	eng := newTestEngine(t, healed, serve.EngineConfig{})
	srv := serve.NewServer(eng, serve.ServerConfig{})
	ts := newTestHTTPServer(t, srv)
	for step := 0; step < 3; step++ {
		frame, resp := getFrame(t, ts, cfg, step)
		if got := resp.Header.Get(serve.HeaderDegraded); got != "" {
			t.Errorf("step %d: healed read still marked degraded (%q)", step, got)
		}
		if d := img.MaxAbsDiff(want[step], frame); d != 0 {
			t.Errorf("step %d: frame under healed transients differs (max diff %v)", step, d)
		}
	}
	if fstats := faulty.Stats(); fstats.Transients == 0 && fstats.ShortReads == 0 {
		t.Error("fault schedule injected nothing; the test pinned a no-op")
	}
}

// gateStore wraps a Store and blocks reads of matched objects until the
// gate opens, giving the saturation test deterministic control over how
// long a render holds its admission slot.
type gateStore struct {
	inner pfs.Store
	match func(string) bool

	mu      sync.Mutex
	open    bool
	cond    *sync.Cond
	waiters int
}

func newGateStore(inner pfs.Store, match func(string) bool) *gateStore {
	g := &gateStore{inner: inner, match: match}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Open releases all blocked reads (and all future ones).
func (g *gateStore) Open() {
	g.mu.Lock()
	g.open = true
	g.mu.Unlock()
	g.cond.Broadcast()
}

// Waiters reports how many reads are currently blocked.
func (g *gateStore) Waiters() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiters
}

func (g *gateStore) wait(name string) {
	if g.match != nil && !g.match(name) {
		return
	}
	g.mu.Lock()
	g.waiters++
	for !g.open {
		g.cond.Wait()
	}
	g.waiters--
	g.mu.Unlock()
}

// Size implements pfs.Store.
func (g *gateStore) Size(name string) (int64, error) { return g.inner.Size(name) }

// ReadAt implements pfs.Store, blocking matched objects until Open.
func (g *gateStore) ReadAt(c *mpi.Comm, name string, off int64, buf []byte) error {
	g.wait(name)
	return g.inner.ReadAt(c, name, off, buf)
}

// Write implements pfs.Store.
func (g *gateStore) Write(name string, data []byte) error { return g.inner.Write(name, data) }

// TestChaosServeSaturationSheds pins admission control under render-queue
// saturation: with one in-flight slot held by a gated render, an
// unqueueable second render is shed 429 immediately, a queued render
// sheds 429 after the queue timeout, and cache hits keep being served
// throughout.
func TestChaosServeSaturationSheds(t *testing.T) {
	store := buildDataset(t, 3)
	vmax := scanVMaxOf(t, store)
	gate := newGateStore(store, func(name string) bool { return name == quake.StepObject(1) })
	cfg := serve.RenderConfig{Width: 32, Height: 32}

	eng := newTestEngine(t, gate, serve.EngineConfig{FixedVMax: vmax})
	srv := serve.NewServer(eng, serve.ServerConfig{
		MaxInFlight:  1,
		MaxQueue:     1,
		QueueTimeout: 50 * time.Millisecond,
	})
	ts := newTestHTTPServer(t, srv)

	// Warm step 0 into the cache while the gate only covers step 1.
	getFrame(t, ts, cfg, 0)

	// Saturate the single render slot with a request stuck on the gate.
	stuck := make(chan error, 1)
	go func() {
		_, err := getFrameErr(ts, cfg, 1)
		stuck <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for gate.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("gated render never reached the store")
		}
		time.Sleep(time.Millisecond)
	}

	// One request fits the queue and sheds on timeout; a second is shed
	// instantly because both the slot and the queue are full. Fire the
	// queued one first, then overflow it.
	queued := make(chan int, 1)
	go func() {
		resp, err := ts.Client().Get(ts.URL + "/frame?step=2&w=32&h=32")
		if err != nil {
			queued <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		queued <- resp.StatusCode
	}()
	time.Sleep(10 * time.Millisecond) // let it enter the queue
	resp, err := ts.Client().Get(ts.URL + "/frame?step=2&w=32&h=32")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("overflow request: %s, want 429", resp.Status)
	}
	if code := <-queued; code != http.StatusTooManyRequests {
		t.Errorf("queued request: %d, want 429 after queue timeout", code)
	}

	// Cache hits bypass admission even while saturated.
	_, hitResp := getFrame(t, ts, cfg, 0)
	if got := hitResp.Header.Get(serve.HeaderCache); got != "hit" {
		t.Errorf("cached frame under saturation: cache header %q, want hit", got)
	}

	gate.Open()
	if err := <-stuck; err != nil {
		t.Fatalf("gated render failed after release: %v", err)
	}
	if st := srv.Snapshot(); st.Shed < 2 {
		t.Errorf("shed counter = %d, want >= 2", st.Shed)
	}
}

// TestChaosServeDrainNoLeaks pins graceful shutdown: draining refuses new
// renders with 503 (healthz flips too), keeps serving cache hits, lets
// in-flight work finish, and leaks no goroutines or sessions once done.
func TestChaosServeDrainNoLeaks(t *testing.T) {
	baseline := runtime.NumGoroutine()
	store := buildDataset(t, 3)
	cfg := serve.RenderConfig{Width: 32, Height: 32}
	eng := newTestEngine(t, store, serve.EngineConfig{})
	srv := serve.NewServer(eng, serve.ServerConfig{MaxInFlight: 2})
	ts := newTestHTTPServer(t, srv)

	// Mixed traffic, then drain.
	var wg sync.WaitGroup
	for v := 0; v < 4; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			for step := 0; step < 3; step++ {
				getFrameErr(ts, cfg, step)
			}
		}(v)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %s, want 503", resp.Status)
	}
	resp, err = ts.Client().Get(ts.URL + "/frame?step=2&w=48&h=48") // uncached: needs a render
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("render while draining: %s, want 503", resp.Status)
	}
	_, hitResp := getFrame(t, ts, cfg, 0) // cached: still served
	if got := hitResp.Header.Get(serve.HeaderCache); got != "hit" {
		t.Errorf("cached frame while draining: cache header %q, want hit", got)
	}
	if eng.IdleSessions() != 0 {
		t.Errorf("%d sessions survived engine close", eng.IdleSessions())
	}

	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d now vs %d baseline\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
