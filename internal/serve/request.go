package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/url"
	"strconv"
)

// Frame-request decoding: query parameters or a JSON body become a
// validated (RenderConfig, step range, format) triple. The decoder is
// strict — unknown keys, out-of-range geometry, non-finite angles and
// unknown transfer-function names are rejected — because every accepted
// combination becomes a cache key and a session configuration; lenient
// parsing would let junk requests mint unbounded key variants. All
// reject paths bound their work by the input-size caps below, so
// malformed input cannot allocate unboundedly (pinned by
// FuzzServeRequestParse).

const (
	// MaxRawRequestLen caps the accepted query-string or JSON-body length
	// in bytes; longer inputs are rejected before any parsing allocates.
	MaxRawRequestLen = 4096
	// MinFrameDim is the smallest accepted frame width or height.
	MinFrameDim = 8
	// MaxFrameDim is the largest accepted frame width or height; the wire
	// decoder also uses it to bound header-promised sizes.
	MaxFrameDim = 2048
	// DefaultFrameDim is the width and height when a request names none.
	DefaultFrameDim = 256
	// FormatRaw names the float32 little-endian wire encoding
	// (docs/serve.md), the default response format.
	FormatRaw = "raw"
	// FormatPNG names the tone-mapped PNG encoding (single-frame
	// endpoint only).
	FormatPNG = "png"
)

// Request is one decoded frame request: what to render (Cfg), which
// dataset steps ([Lo, Hi)), and how to encode the response.
type Request struct {
	// Cfg is the render configuration (also the cache/session key).
	Cfg RenderConfig
	// Lo and Hi bound the requested dataset steps, half-open [Lo, Hi).
	Lo, Hi int
	// Format is FormatRaw or FormatPNG.
	Format string
}

// Limits bounds what a decoded request may ask for; the Server fills it
// from the Engine (dataset length, window bound).
type Limits struct {
	// Steps is the dataset timestep count; requests must stay inside
	// [0, Steps).
	Steps int
	// MaxRange caps Hi-Lo (0 means 1: single-frame endpoints).
	MaxRange int
}

// requestJSON is the JSON-body shape of a frame request; every field is
// optional except the step (either "step" or "lo"+"hi").
type requestJSON struct {
	Step   *int    `json:"step"`
	Lo     *int    `json:"lo"`
	Hi     *int    `json:"hi"`
	Width  int     `json:"width"`
	Height int     `json:"height"`
	View   string  `json:"view"`
	Az     float64 `json:"az"`
	El     float64 `json:"el"`
	TF     string  `json:"tf"`
	Format string  `json:"format"`
}

// ParseQuery decodes a raw URL query string ("step=3&w=256&view=orbit&
// az=30&el=55&tf=hot&format=raw") into a validated Request. Accepted
// keys: step | lo+hi, w, h, view (default|orbit), az, el (orbit only),
// tf, format. Unknown keys are an error.
func ParseQuery(rawQuery string, lim Limits) (Request, error) {
	if len(rawQuery) > MaxRawRequestLen {
		return Request{}, fmt.Errorf("serve: query longer than %d bytes", MaxRawRequestLen)
	}
	vals, err := url.ParseQuery(rawQuery)
	if err != nil {
		return Request{}, fmt.Errorf("serve: bad query: %w", err)
	}
	var rj requestJSON
	for key, vs := range vals {
		if len(vs) != 1 {
			return Request{}, fmt.Errorf("serve: repeated parameter %q", key)
		}
		v := vs[0]
		switch key {
		case "step":
			n, err := parseInt(key, v)
			if err != nil {
				return Request{}, err
			}
			rj.Step = &n
		case "lo":
			n, err := parseInt(key, v)
			if err != nil {
				return Request{}, err
			}
			rj.Lo = &n
		case "hi":
			n, err := parseInt(key, v)
			if err != nil {
				return Request{}, err
			}
			rj.Hi = &n
		case "w":
			if rj.Width, err = parseInt(key, v); err != nil {
				return Request{}, err
			}
		case "h":
			if rj.Height, err = parseInt(key, v); err != nil {
				return Request{}, err
			}
		case "view":
			rj.View = v
		case "az":
			if rj.Az, err = parseFloat(key, v); err != nil {
				return Request{}, err
			}
		case "el":
			if rj.El, err = parseFloat(key, v); err != nil {
				return Request{}, err
			}
		case "tf":
			rj.TF = v
		case "format":
			rj.Format = v
		default:
			return Request{}, fmt.Errorf("serve: unknown parameter %q", key)
		}
	}
	return rj.validate(lim)
}

// ParseJSONBody decodes a JSON request body into a validated Request.
// The body shape mirrors the query parameters; unknown fields are an
// error.
func ParseJSONBody(body []byte, lim Limits) (Request, error) {
	if len(body) > MaxRawRequestLen {
		return Request{}, fmt.Errorf("serve: body longer than %d bytes", MaxRawRequestLen)
	}
	var rj requestJSON
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rj); err != nil {
		return Request{}, fmt.Errorf("serve: bad JSON body: %w", err)
	}
	if dec.More() {
		return Request{}, fmt.Errorf("serve: trailing data after JSON body")
	}
	return rj.validate(lim)
}

// parseInt parses a decimal integer parameter with a bounded length.
func parseInt(key, v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("serve: parameter %q: %w", key, err)
	}
	return n, nil
}

// parseFloat parses a float parameter, rejecting non-finite values
// (NaN would poison map-key equality: a NaN-keyed config can never
// cache-hit itself).
func parseFloat(key, v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: parameter %q: %w", key, err)
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("serve: parameter %q must be finite", key)
	}
	return f, nil
}

// validate turns the decoded fields into a Request, applying defaults
// and the full validation rules.
func (rj requestJSON) validate(lim Limits) (Request, error) {
	var req Request

	switch {
	case rj.Step != nil:
		if rj.Lo != nil || rj.Hi != nil {
			return Request{}, fmt.Errorf("serve: step and lo/hi are mutually exclusive")
		}
		req.Lo, req.Hi = *rj.Step, *rj.Step+1
	case rj.Lo != nil && rj.Hi != nil:
		req.Lo, req.Hi = *rj.Lo, *rj.Hi
	default:
		return Request{}, fmt.Errorf("serve: request needs step= or lo=&hi=")
	}
	if req.Lo < 0 || req.Hi <= req.Lo || req.Hi > lim.Steps {
		return Request{}, fmt.Errorf("serve: step range [%d, %d) outside dataset steps [0, %d)", req.Lo, req.Hi, lim.Steps)
	}
	maxRange := lim.MaxRange
	if maxRange <= 0 {
		maxRange = 1
	}
	if req.Hi-req.Lo > maxRange {
		return Request{}, fmt.Errorf("serve: range of %d steps exceeds the %d-step bound", req.Hi-req.Lo, maxRange)
	}

	w, h := rj.Width, rj.Height
	if w == 0 {
		w = DefaultFrameDim
	}
	if h == 0 {
		h = DefaultFrameDim
	}
	if w < MinFrameDim || w > MaxFrameDim || h < MinFrameDim || h > MaxFrameDim {
		return Request{}, fmt.Errorf("serve: frame size %dx%d outside [%d, %d]", w, h, MinFrameDim, MaxFrameDim)
	}
	req.Cfg.Width, req.Cfg.Height = w, h

	switch rj.View {
	case "", "default":
		if rj.Az != 0 || rj.El != 0 {
			return Request{}, fmt.Errorf("serve: az/el need view=orbit")
		}
	case "orbit":
		if rj.Az < -360 || rj.Az > 360 || rj.El < 0 || rj.El > 90 {
			return Request{}, fmt.Errorf("serve: orbit angles az=%v el=%v outside az [-360, 360], el [0, 90]", rj.Az, rj.El)
		}
		req.Cfg.Orbit = true
		req.Cfg.Az, req.Cfg.El = rj.Az, rj.El
	default:
		return Request{}, fmt.Errorf("serve: unknown view %q", rj.View)
	}

	switch rj.TF {
	case "", "seismic", "gray", "hot":
		req.Cfg.TF = rj.TF
	default:
		return Request{}, fmt.Errorf("serve: unknown transfer function %q", rj.TF)
	}

	switch rj.Format {
	case "":
		req.Format = FormatRaw
	case FormatRaw, FormatPNG:
		req.Format = rj.Format
	default:
		return Request{}, fmt.Errorf("serve: unknown format %q", rj.Format)
	}
	return req, nil
}
