package faultinject

// Net chaos schedule tests: determinism per seed, explicit-site firing,
// kill gating — plus the end-to-end fuzz target that drives seeded drop
// schedules through a live two-rank loopback transport and requires
// every message to arrive exactly once, in order, regardless of seed.

import (
	"testing"
	"time"

	"repro/internal/mpi"
)

// TestNetChaosDeterministic: equal seeds give identical per-frame
// verdicts; different seeds give a different schedule.
func TestNetChaosDeterministic(t *testing.T) {
	cfg := NetChaosConfig{Seed: 7, PDrop: 0.1, PPartial: 0.05, PDelay: 0.1}
	a, b := NewNetChaos(cfg), NewNetChaos(cfg)
	cfg.Seed = 8
	c := NewNetChaos(cfg)
	same, diff := 0, 0
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			if src == dst {
				continue
			}
			for seq := uint64(1); seq <= 200; seq++ {
				av, _ := a.SendFault(src, dst, seq, 0)
				bv, _ := b.SendFault(src, dst, seq, 0)
				cv, _ := c.SendFault(src, dst, seq, 0)
				if av != bv {
					t.Fatalf("seed 7 disagrees with itself at (%d,%d,%d): %d vs %d", src, dst, seq, av, bv)
				}
				if av == cv {
					same++
				} else {
					diff++
				}
			}
		}
	}
	if diff == 0 {
		t.Error("seeds 7 and 8 produced identical schedules")
	}
	st := a.Stats()
	if st.Drops == 0 || st.Partials == 0 || st.Delays == 0 {
		t.Errorf("schedule fired drops=%d partials=%d delays=%d, want all > 0", st.Drops, st.Partials, st.Delays)
	}
}

// TestNetChaosExplicitSites: DropAt/PartialAt fire exactly at their
// sites and nowhere else, and the kill schedule only fires when armed.
func TestNetChaosExplicitSites(t *testing.T) {
	nc := NewNetChaos(NetChaosConfig{
		DropAt:    []NetFaultSite{{Src: 0, Dst: 1, Seq: 7}},
		PartialAt: []NetFaultSite{{Src: 1, Dst: 0, Seq: 3}},
	})
	for seq := uint64(1); seq <= 20; seq++ {
		act, _ := nc.SendFault(0, 1, seq, seq-1)
		want := mpi.NetFaultNone
		if seq == 7 {
			want = mpi.NetFaultDropConn
		}
		if act != want {
			t.Errorf("(0,1,%d): action %d, want %d", seq, act, want)
		}
		act, _ = nc.SendFault(1, 0, seq, seq-1)
		want = mpi.NetFaultNone
		if seq == 3 {
			want = mpi.NetFaultPartialWrite
		}
		if act != want {
			t.Errorf("(1,0,%d): action %d, want %d", seq, act, want)
		}
	}
	st := nc.Stats()
	if st.Drops != 1 || st.Partials != 1 || st.Kills != 0 {
		t.Errorf("stats = %+v, want 1 drop, 1 partial, 0 kills", st)
	}

	// The zero-value kill schedule must be inert even for rank 0.
	if act, _ := NewNetChaos(NetChaosConfig{}).SendFault(0, 1, 1, 0); act != mpi.NetFaultNone {
		t.Errorf("unarmed kill schedule fired action %d", act)
	}
	armed := NewNetChaos(NetChaosConfig{Kill: true, KillRank: 0, KillAtSend: 2})
	if act, _ := armed.SendFault(0, 1, 1, 1); act != mpi.NetFaultNone {
		t.Error("kill fired below KillAtSend")
	}
	if act, _ := armed.SendFault(0, 1, 2, 2); act != mpi.NetFaultKill {
		t.Error("kill did not fire at KillAtSend")
	}
}

// TestNetChaosMaxFaults: the incident budget caps drops+partials.
func TestNetChaosMaxFaults(t *testing.T) {
	nc := NewNetChaos(NetChaosConfig{Seed: 3, PDrop: 1, MaxFaults: 2})
	fired := 0
	for seq := uint64(1); seq <= 10; seq++ {
		if act, _ := nc.SendFault(0, 1, seq, 0); act == mpi.NetFaultDropConn {
			fired++
		}
	}
	if fired != 2 {
		t.Errorf("fired %d drops under MaxFaults=2, want 2", fired)
	}
}

// runChaosPingPong drives rounds of a two-rank ordered ping-pong under
// the given schedule and fails the test on any lost, duplicated or
// reordered message. Returns the per-rank transport stats.
func runChaosPingPong(t testing.TB, nc *NetChaos, rounds int) mpi.NetReport {
	t.Helper()
	tun := mpi.NetTuning{
		Heartbeat:         10 * time.Millisecond,
		PeerTimeout:       300 * time.Millisecond,
		ReconnectAttempts: 5,
		ReconnectBase:     2 * time.Millisecond,
		ReconnectMax:      20 * time.Millisecond,
		ReconnectWindow:   2 * time.Second,
		Fault:             nc,
	}
	rep, err := mpi.RunNetErrs(2, tun, func(c *mpi.Comm) {
		const tag = 12
		if c.Rank() == 0 {
			for i := 0; i < rounds; i++ {
				c.Send(1, tag, 8, int64(i))
				m := c.Recv(1, tag)
				if got := m.Data.(int64); got != int64(i) {
					t.Errorf("round %d: echo %d", i, got)
				}
			}
		} else {
			for i := 0; i < rounds; i++ {
				m := c.Recv(0, tag)
				if got := m.Data.(int64); got != int64(i) {
					t.Errorf("round %d: received %d", i, got)
				}
				c.Send(0, tag, 8, m.Data)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, rerr := range rep.Errs {
		if rerr != nil {
			t.Fatalf("rank %d: %v", r, rerr)
		}
	}
	return rep
}

// TestNetChaosOverTransport: a seeded drop schedule against the live
// transport — deterministic incident count, every incident healed, no
// peers lost, traffic intact.
func TestNetChaosOverTransport(t *testing.T) {
	nc := NewNetChaos(NetChaosConfig{Seed: 42, PDrop: 0.05, MaxFaults: 6})
	rep := runChaosPingPong(t, nc, 60)
	st := nc.Stats()
	if st.Drops == 0 {
		t.Fatal("seed 42 fired no drops; pick a livelier seed")
	}
	if lost := rep.Stats[0].PeersLost + rep.Stats[1].PeersLost; lost != 0 {
		t.Errorf("peers lost = %d, want 0", lost)
	}
	if rc := rep.Stats[0].Reconnects + rep.Stats[1].Reconnects; rc == 0 || rc > 2*uint64(st.Drops) {
		t.Errorf("reconnects = %d for %d drops, want in (0, 2x]", rc, st.Drops)
	}
}

// FuzzNetChaos: arbitrary (seed, drop/partial rates, rounds) schedules
// against the live transport must never lose, duplicate or reorder a
// message — heal-only schedules always converge to a clean run. The
// committed seeds cover drop-heavy, partial-heavy, mixed and quiet
// schedules.
func FuzzNetChaos(f *testing.F) {
	f.Add(uint64(1), uint16(40), uint16(0), uint8(20))
	f.Add(uint64(42), uint16(50), uint16(25), uint8(30))
	f.Add(uint64(0xbeef), uint16(0), uint16(60), uint8(15))
	f.Add(uint64(7), uint16(0), uint16(0), uint8(10))
	f.Add(uint64(0xdead), uint16(120), uint16(80), uint8(25))
	f.Fuzz(func(t *testing.T, seed uint64, dropPM, partialPM uint16, rounds uint8) {
		if rounds == 0 || rounds > 40 {
			t.Skip("round count out of the useful range")
		}
		// Cap rates so the budgeted reconnect attempts always win:
		// the fuzz property is "heals converge", not "loss degrades".
		nc := NewNetChaos(NetChaosConfig{
			Seed:     seed,
			PDrop:    float64(dropPM%200) / 1000,
			PPartial: float64(partialPM%200) / 1000,
			// At most a handful of incidents per run: enough to stress
			// replay and dedup, bounded enough to stay fast.
			MaxFaults: 5,
		})
		runChaosPingPong(t, nc, int(rounds))
	})
}
