package faultinject

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pfs"
)

func newInner(t testing.TB) *pfs.MemStore {
	t.Helper()
	st := pfs.NewMemStore()
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := st.Write("obj", data); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestDisabledSchedulePassesThrough(t *testing.T) {
	inner := newInner(t)
	s := Wrap(inner, Config{Seed: 7}) // all probabilities zero
	want := make([]byte, 64)
	got := make([]byte, 64)
	for off := int64(0); off < 4096; off += 512 {
		if err := inner.ReadAt(nil, "obj", off, want); err != nil {
			t.Fatal(err)
		}
		if err := s.ReadAt(nil, "obj", off, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("offset %d: injected store diverged with zero probabilities", off)
		}
	}
	st := s.Stats()
	if st.Transients+st.Permanents+st.ShortReads+st.Corrupts+st.Latencies != 0 {
		t.Errorf("zero-probability schedule injected: %+v", st)
	}
	if st.Reads != 8 {
		t.Errorf("Reads = %d, want 8", st.Reads)
	}
}

func TestScheduleReproducibleBySeed(t *testing.T) {
	kinds := func(seed uint64) []Kind {
		s := Wrap(newInner(t), Config{
			Seed: seed, PTransient: 0.2, PPermanent: 0.1, PShortRead: 0.1, PCorrupt: 0.1, PLatency: 0.1,
		})
		var out []Kind
		for off := int64(0); off < 4096; off += 64 {
			out = append(out, s.kindOf("obj", off))
		}
		return out
	}
	a, b := kinds(1), kinds(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at site %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := kinds(2)
	same := 0
	var classes [6]int
	for i := range a {
		if a[i] == c[i] {
			same++
		}
		classes[a[i]]++
	}
	if same == len(a) {
		t.Error("different seeds gave identical schedules")
	}
	// With 64 sites at these probabilities every class should appear.
	for k := KindPermanent; k <= KindLatency; k++ {
		if classes[k] == 0 {
			t.Errorf("no site drew %v in 64 samples (p>=0.1 each)", k)
		}
	}
}

func TestTransientHealsOnRetry(t *testing.T) {
	s := Wrap(newInner(t), Config{Seed: 3, PTransient: 1})
	buf := make([]byte, 32)
	err := s.ReadAt(nil, "obj", 100, buf)
	if !pfs.IsTransient(err) {
		t.Fatalf("first read = %v, want transient", err)
	}
	if err := s.ReadAt(nil, "obj", 100, buf); err != nil {
		t.Fatalf("retry did not heal: %v", err)
	}
	want := make([]byte, 32)
	newInner(t).ReadAt(nil, "obj", 100, want)
	if !bytes.Equal(buf, want) {
		t.Error("healed read returned wrong bytes")
	}
	// Sizes share the schedule at pseudo-offset -1.
	if _, err := s.Size("obj"); !pfs.IsTransient(err) {
		t.Error("size probe did not fault transiently")
	}
	if n, err := s.Size("obj"); err != nil || n != 4096 {
		t.Errorf("healed Size = %d, %v", n, err)
	}
}

func TestFaultAttemptsExtendsOutage(t *testing.T) {
	s := Wrap(newInner(t), Config{Seed: 3, PTransient: 1, FaultAttempts: 3})
	buf := make([]byte, 8)
	for k := 0; k < 3; k++ {
		if err := s.ReadAt(nil, "obj", 0, buf); !pfs.IsTransient(err) {
			t.Fatalf("attempt %d = %v, want transient", k+1, err)
		}
	}
	if err := s.ReadAt(nil, "obj", 0, buf); err != nil {
		t.Fatalf("attempt 4 should heal: %v", err)
	}
}

func TestPermanentNeverHeals(t *testing.T) {
	s := Wrap(newInner(t), Config{Seed: 3, PPermanent: 1})
	buf := make([]byte, 8)
	for k := 0; k < 5; k++ {
		err := s.ReadAt(nil, "obj", 64, buf)
		if !errors.Is(err, pfs.ErrPermanent) {
			t.Fatalf("attempt %d = %v, want permanent", k+1, err)
		}
	}
	if s.Stats().Permanents != 5 {
		t.Errorf("Permanents = %d, want 5", s.Stats().Permanents)
	}
}

func TestShortReadFillsPrefixAndClassifies(t *testing.T) {
	s := Wrap(newInner(t), Config{Seed: 3, PShortRead: 1})
	buf := make([]byte, 32)
	for i := range buf {
		buf[i] = 0xAA
	}
	err := s.ReadAt(nil, "obj", 0, buf)
	if !errors.Is(err, pfs.ErrShortRead) || !pfs.IsTransient(err) {
		t.Fatalf("short read = %v, want ErrShortRead+transient", err)
	}
	want := make([]byte, 32)
	newInner(t).ReadAt(nil, "obj", 0, want)
	if !bytes.Equal(buf[:16], want[:16]) {
		t.Error("short read did not fill the prefix")
	}
	if !strings.Contains(err.Error(), "got 16 bytes") {
		t.Errorf("error %q missing byte count", err)
	}
	if err := s.ReadAt(nil, "obj", 0, buf); err != nil {
		t.Fatalf("short-read site did not heal: %v", err)
	}
}

// TestCorruptionIsDetectable pins the injector's corruption pattern: the
// flipped float32 word becomes non-finite, so quake-style record validation
// (exponent all-ones) is guaranteed to catch it.
func TestCorruptionIsDetectable(t *testing.T) {
	s := Wrap(newInner(t), Config{Seed: 3, PCorrupt: 1})
	buf := make([]byte, 64)
	if err := s.ReadAt(nil, "obj", 0, buf); err != nil {
		t.Fatalf("corrupt read must succeed at the store level: %v", err)
	}
	want := make([]byte, 64)
	newInner(t).ReadAt(nil, "obj", 0, want)
	if bytes.Equal(buf, want) {
		t.Fatal("corrupt read returned clean bytes")
	}
	nonFinite := 0
	for w := 0; w+4 <= len(buf); w += 4 {
		bits := uint32(buf[w]) | uint32(buf[w+1])<<8 | uint32(buf[w+2])<<16 | uint32(buf[w+3])<<24
		f := math.Float32frombits(bits)
		if math.IsNaN(float64(f)) || math.IsInf(float64(f), 0) {
			nonFinite++
		}
	}
	if nonFinite == 0 {
		t.Error("injected corruption produced only finite values (undetectable)")
	}
	// The re-read returns clean bytes — the "corrupt heals on re-read"
	// contract the decode-layer re-read depends on.
	if err := s.ReadAt(nil, "obj", 0, buf); err != nil || !bytes.Equal(buf, want) {
		t.Errorf("re-read not clean: %v", err)
	}
}

func TestLatencyDelaysButSucceeds(t *testing.T) {
	s := Wrap(newInner(t), Config{Seed: 3, PLatency: 1, Latency: 5 * time.Millisecond})
	buf := make([]byte, 16)
	start := time.Now()
	if err := s.ReadAt(nil, "obj", 0, buf); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("latency site returned too fast")
	}
	if s.Stats().Latencies != 1 {
		t.Errorf("Latencies = %d, want 1", s.Stats().Latencies)
	}
}

func TestMatchSparesObjects(t *testing.T) {
	inner := newInner(t)
	inner.Write("meta.bin", []byte("metadata"))
	s := Wrap(inner, Config{
		Seed: 3, PPermanent: 1,
		Match: func(name string) bool { return strings.HasPrefix(name, "obj") },
	})
	if err := s.ReadAt(nil, "meta.bin", 0, make([]byte, 4)); err != nil {
		t.Errorf("spared object faulted: %v", err)
	}
	if _, err := s.Size("meta.bin"); err != nil {
		t.Errorf("spared Size faulted: %v", err)
	}
	if err := s.ReadAt(nil, "obj", 0, make([]byte, 4)); err == nil {
		t.Error("matched object did not fault")
	}
}

func TestConcurrentReadsRaceClean(t *testing.T) {
	s := Wrap(newInner(t), Config{Seed: 9, PTransient: 0.3, PCorrupt: 0.2, PShortRead: 0.1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 16)
			for off := int64(0); off < 4096; off += 16 {
				for attempt := 0; attempt < 3; attempt++ {
					if err := s.ReadAt(nil, "obj", off, buf); err == nil {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if s.Stats().Reads == 0 {
		t.Error("no reads recorded")
	}
}

// FuzzFaultSchedule drives arbitrary (seed, probabilities, site) inputs
// through the injector and checks its invariants against a clean reference
// store: determinism by seed, pass-through when disabled, transient sites
// healing after FaultAttempts reads, corruption being non-finite-detectable,
// and permanent sites never healing.
func FuzzFaultSchedule(f *testing.F) {
	f.Add(uint64(1), uint16(200), uint16(100), uint16(100), uint16(100), int64(0), uint8(1))
	f.Add(uint64(42), uint16(1000), uint16(0), uint16(0), uint16(0), int64(128), uint8(2))
	f.Add(uint64(0), uint16(0), uint16(1000), uint16(0), uint16(0), int64(4000), uint8(1))
	f.Add(uint64(7), uint16(0), uint16(0), uint16(1000), uint16(0), int64(64), uint8(3))
	f.Add(uint64(9), uint16(0), uint16(0), uint16(0), uint16(1000), int64(12), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, pt, pp, ps, pc uint16, off int64, attempts uint8) {
		inner := pfs.NewMemStore()
		data := make([]byte, 4096)
		for i := range data {
			data[i] = byte(i*7 + 1)
		}
		inner.Write("obj", data)
		cfg := Config{
			Seed:       seed,
			PTransient: float64(pt%1001) / 1000,
			PPermanent: float64(pp%1001) / 1000,
			PShortRead: float64(ps%1001) / 1000,
			PCorrupt:   float64(pc%1001) / 1000,
		}
		// Keep the evaluation order's probability sum <= 1.
		if sum := cfg.PPermanent + cfg.PTransient + cfg.PShortRead + cfg.PCorrupt; sum > 1 {
			scale := 1 / sum
			cfg.PPermanent *= scale
			cfg.PTransient *= scale
			cfg.PShortRead *= scale
			cfg.PCorrupt *= scale
		}
		cfg.FaultAttempts = int(attempts%4) + 1
		if off < 0 {
			off = -off
		}
		off %= 4064
		s := Wrap(inner, cfg)
		kind := s.kindOf("obj", off)
		if kind != Wrap(inner, cfg).kindOf("obj", off) {
			t.Fatal("schedule not deterministic for equal configs")
		}
		want := make([]byte, 32)
		inner.ReadAt(nil, "obj", off, want)
		buf := make([]byte, 32)
		for attempt := 1; attempt <= cfg.FaultAttempts+1; attempt++ {
			err := s.ReadAt(nil, "obj", off, buf)
			healed := attempt > cfg.FaultAttempts
			switch kind {
			case KindNone, KindLatency:
				if err != nil {
					t.Fatalf("clean site errored: %v", err)
				}
				if !bytes.Equal(buf, want) {
					t.Fatal("clean site returned wrong bytes")
				}
			case KindPermanent:
				if !errors.Is(err, pfs.ErrPermanent) {
					t.Fatalf("permanent site attempt %d = %v", attempt, err)
				}
			case KindTransient:
				if healed != (err == nil) {
					t.Fatalf("transient site attempt %d (heal=%v) = %v", attempt, healed, err)
				}
				if healed && !bytes.Equal(buf, want) {
					t.Fatal("healed transient returned wrong bytes")
				}
			case KindShortRead:
				if healed != (err == nil) {
					t.Fatalf("shortread site attempt %d (heal=%v) = %v", attempt, healed, err)
				}
				if err != nil && !errors.Is(err, pfs.ErrShortRead) {
					t.Fatalf("shortread site error = %v", err)
				}
			case KindCorrupt:
				if err != nil {
					t.Fatalf("corrupt site must succeed at store level: %v", err)
				}
				if healed != bytes.Equal(buf, want) {
					t.Fatalf("corrupt site attempt %d: healed=%v clean=%v", attempt, healed, bytes.Equal(buf, want))
				}
				if !healed {
					// The flipped word must be detectably non-finite.
					found := false
					for w := 0; w+4 <= len(buf); w += 4 {
						bits := uint32(buf[w]) | uint32(buf[w+1])<<8 | uint32(buf[w+2])<<16 | uint32(buf[w+3])<<24
						if bits&0x7f800000 == 0x7f800000 {
							found = true
						}
					}
					if !found {
						t.Fatal("injected corruption not detectable")
					}
				}
			}
		}
	})
}
