// Package faultinject is the seeded, deterministic fault-injection harness
// the pipeline's resilience is tested against (docs/faults.md). It wraps a
// pfs.Store and injects faults — transient errors, permanent errors, short
// reads, bit-flip corruption, added latency — according to a schedule
// derived purely from (seed, object, offset, attempt):
//
//   - Whether a read *site* (object, offset) faults, and how, is a pure
//     hash of the seed and the site. The decision does not depend on
//     wall-clock time, goroutine scheduling or call order across ranks, so
//     a chaos run is reproducible from its seed alone even though the
//     pipeline's ranks race freely.
//   - Whether a faulty site *still* faults depends on how many times that
//     site has been read: transient faults (and short reads, and
//     corruption) heal after Config.FaultAttempts reads, permanent faults
//     never do. This is what makes "retry with backoff" testable: the
//     retry IS the heal.
//
// Injected corruption flips the exponent bits of one float32 word in the
// read buffer to the all-ones pattern, producing a non-finite value that
// quake.DecodeStepInto's record validation detects (pfs.ErrCorrupt).
// Bit flips that keep values finite and plausible are indistinguishable
// from data and deliberately out of scope — see docs/faults.md.
//
// A nil *Store passes every call straight through, and the wrapper is
// simply not installed in production paths, so the happy path carries
// zero overhead when injection is disabled.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mpi"
	"repro/internal/pfs"
)

// Kind enumerates the injected fault classes.
type Kind int

// The injectable fault classes, in schedule-priority order.
const (
	// KindNone marks a clean read.
	KindNone Kind = iota
	// KindPermanent fails the site on every attempt (pfs.ErrPermanent).
	KindPermanent
	// KindTransient fails the site's first FaultAttempts reads
	// (pfs.ErrTransient), then heals.
	KindTransient
	// KindShortRead fills a prefix of the buffer and errors
	// (pfs.ErrShortRead, transient) for the first FaultAttempts reads.
	KindShortRead
	// KindCorrupt returns success with one float32 word's exponent bits
	// flipped to all-ones for the first FaultAttempts reads — detectable
	// downstream by record validation, healed by a re-read.
	KindCorrupt
	// KindLatency delays the read by Config.Latency, then succeeds.
	KindLatency
)

// String names the fault class for logs and test output.
func (k Kind) String() string {
	switch k {
	case KindPermanent:
		return "permanent"
	case KindTransient:
		return "transient"
	case KindShortRead:
		return "shortread"
	case KindCorrupt:
		return "corrupt"
	case KindLatency:
		return "latency"
	}
	return "none"
}

// Config is a seeded fault schedule. Probabilities are per read site
// (object, offset) and are evaluated in the order permanent, transient,
// short read, corrupt, latency; their sum must be <= 1.
type Config struct {
	// Seed selects the schedule; equal seeds give equal schedules.
	Seed uint64

	// PPermanent is the probability a site fails every attempt.
	PPermanent float64
	// PTransient is the probability a site fails its first FaultAttempts
	// reads with a transient error.
	PTransient float64
	// PShortRead is the probability a site's first FaultAttempts reads
	// return short.
	PShortRead float64
	// PCorrupt is the probability a site's first FaultAttempts reads
	// return detectably corrupted bytes.
	PCorrupt float64
	// PLatency is the probability a read sleeps Latency before succeeding.
	PLatency float64

	// FaultAttempts is how many reads of a faulty (non-permanent) site
	// fail before it heals (default 1: the first retry succeeds).
	FaultAttempts int

	// Latency is the injected delay for KindLatency sites.
	Latency time.Duration

	// Match restricts injection to objects it accepts (nil = all). Use it
	// to spare metadata objects so construction-time reads stay clean.
	Match func(name string) bool
}

// Stats counts injected faults by class. Reads is every ReadAt observed.
type Stats struct {
	Reads      int64
	Transients int64
	Permanents int64
	ShortReads int64
	Corrupts   int64
	Latencies  int64
}

// Store wraps a pfs.Store with the fault schedule. A nil *Store is valid
// and injects nothing (both method sets pass through), so callers can keep
// an always-present field that costs nothing when disabled.
type Store struct {
	inner pfs.Store
	cfg   Config

	mu       sync.Mutex
	attempts map[site]int

	reads      atomic.Int64
	transients atomic.Int64
	permanents atomic.Int64
	shortReads atomic.Int64
	corrupts   atomic.Int64
	latencies  atomic.Int64
}

// site identifies one (object, offset) read location.
type site struct {
	name string
	off  int64
}

// Wrap builds an injecting store over inner.
func Wrap(inner pfs.Store, cfg Config) *Store {
	if cfg.FaultAttempts <= 0 {
		cfg.FaultAttempts = 1
	}
	return &Store{inner: inner, cfg: cfg, attempts: make(map[site]int)}
}

// Stats returns a snapshot of the injection counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Reads:      s.reads.Load(),
		Transients: s.transients.Load(),
		Permanents: s.permanents.Load(),
		ShortReads: s.shortReads.Load(),
		Corrupts:   s.corrupts.Load(),
		Latencies:  s.latencies.Load(),
	}
}

// kindOf evaluates the seeded schedule for a site: a pure function of
// (seed, name, off) — attempt counts only gate healing, not the decision.
func (s *Store) kindOf(name string, off int64) Kind {
	if s.cfg.Match != nil && !s.cfg.Match(name) {
		return KindNone
	}
	// 53 uniform bits -> [0, 1).
	u := float64(pfs.HashSite(s.cfg.Seed, name, off, 0)>>11) / (1 << 53)
	for _, th := range []struct {
		p float64
		k Kind
	}{
		{s.cfg.PPermanent, KindPermanent},
		{s.cfg.PTransient, KindTransient},
		{s.cfg.PShortRead, KindShortRead},
		{s.cfg.PCorrupt, KindCorrupt},
		{s.cfg.PLatency, KindLatency},
	} {
		if u < th.p {
			return th.k
		}
		u -= th.p
	}
	return KindNone
}

// bump increments and returns the site's read count (1-based).
func (s *Store) bump(name string, off int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := site{name, off}
	s.attempts[k]++
	return s.attempts[k]
}

// Size implements pfs.Store. Probes share the schedule with reads at the
// pseudo-offset -1, so a transient-faulted object can also fail its size
// probe and heal on retry.
func (s *Store) Size(name string) (int64, error) {
	if s == nil {
		panic("faultinject: Size on nil Store (wrap the inner store or keep using it directly)")
	}
	switch s.kindOf(name, -1) {
	case KindTransient:
		if s.bump(name, -1) <= s.cfg.FaultAttempts {
			s.transients.Add(1)
			return 0, fmt.Errorf("faultinject: injected transient size-probe failure of %q: %w", name, pfs.ErrTransient)
		}
	case KindPermanent:
		s.permanents.Add(1)
		return 0, fmt.Errorf("faultinject: injected permanent size-probe failure of %q: %w", name, pfs.ErrPermanent)
	}
	return s.inner.Size(name)
}

// ReadAt implements pfs.Store, applying the seeded schedule to the
// (object, offset) site before delegating to the wrapped store.
func (s *Store) ReadAt(c *mpi.Comm, name string, off int64, buf []byte) error {
	s.reads.Add(1)
	switch s.kindOf(name, off) {
	case KindPermanent:
		s.permanents.Add(1)
		return fmt.Errorf("faultinject: injected permanent read failure of %q at %d: %w", name, off, pfs.ErrPermanent)
	case KindTransient:
		if s.bump(name, off) <= s.cfg.FaultAttempts {
			s.transients.Add(1)
			return fmt.Errorf("faultinject: injected transient read failure of %q at %d: %w", name, off, pfs.ErrTransient)
		}
	case KindShortRead:
		if s.bump(name, off) <= s.cfg.FaultAttempts {
			s.shortReads.Add(1)
			// Model the torn read faithfully: the prefix really is filled.
			n := len(buf) / 2
			if err := s.inner.ReadAt(c, name, off, buf[:n]); err != nil {
				return err
			}
			return fmt.Errorf("faultinject: injected short read of %q [%d,%d): got %d bytes: %w (%w)",
				name, off, off+int64(len(buf)), n, pfs.ErrShortRead, pfs.ErrTransient)
		}
	case KindCorrupt:
		if s.bump(name, off) <= s.cfg.FaultAttempts {
			if err := s.inner.ReadAt(c, name, off, buf); err != nil {
				return err
			}
			s.corrupts.Add(1)
			corruptWord(buf, pfs.HashSite(s.cfg.Seed, name, off, 1))
			return nil
		}
	case KindLatency:
		s.latencies.Add(1)
		if s.cfg.Latency > 0 {
			time.Sleep(s.cfg.Latency)
		}
	}
	return s.inner.ReadAt(c, name, off, buf)
}

// Write implements pfs.Store (pass-through; the fault model targets the
// read path).
func (s *Store) Write(name string, data []byte) error {
	return s.inner.Write(name, data)
}

// corruptWord flips the exponent bits of one little-endian float32 word
// (picked by h) to all-ones, turning it into a NaN/Inf that record
// validation detects. A word whose exponent bits are already all-ones gets
// a mantissa bit flipped instead (still non-finite), so the corruption
// always changes the buffer. Buffers too small to hold a word get a
// whole-byte flip.
func corruptWord(buf []byte, h uint64) {
	if len(buf) < 4 {
		if len(buf) > 0 {
			buf[int(h%uint64(len(buf)))] ^= 0xff
		}
		return
	}
	w := int(h % uint64(len(buf)/4))
	b2, b3 := buf[4*w+2]|0x80, buf[4*w+3]|0x7f
	if b2 == buf[4*w+2] && b3 == buf[4*w+3] {
		buf[4*w] ^= 0x01
	}
	buf[4*w+2], buf[4*w+3] = b2, b3
}
