package faultinject

// Net chaos: the transport-layer counterpart of the store fault schedule.
// NetChaos implements mpi.NetFaultInjector, deciding per outgoing data
// frame — as a pure function of (seed, src, dst, frame seq), exactly like
// the read-site schedules — whether the connection drops, the frame is
// written partially, the frame is delayed, or the sending rank dies.
// Determinism per seed is what lets the chaos-over-net suites pin exact
// outcomes: N scheduled drops heal into exactly 2N adoptions and frames
// bit-identical to a clean run.

import (
	"sync/atomic"
	"time"

	"repro/internal/mpi"
)

// NetFaultSite names one frame write: the seq-th data frame src sends to
// dst on their shared connection. Explicit site lists are the
// deterministic schedule shape — a site fires exactly once, when that
// frame is first written on a healthy connection (post-heal replays are
// not re-consulted).
type NetFaultSite struct {
	// Src is the sending world rank.
	Src int
	// Dst is the receiving world rank.
	Dst int
	// Seq is the 1-based per-connection data frame sequence number.
	Seq uint64
}

// NetChaosConfig is a seeded network fault schedule. Explicit DropAt /
// PartialAt site lists give exactly-pinnable incidents; the P*
// probabilities add a seeded per-frame schedule on top for stress and
// fuzz runs. The kill schedule is keyed on the sender's global data-send
// counter, which is deterministic under a rank's own send order.
type NetChaosConfig struct {
	// Seed selects the probabilistic schedule; equal seeds give equal
	// schedules.
	Seed uint64

	// PDrop is the per-frame probability the connection is severed
	// before the frame leaves (the transport heals and replays).
	PDrop float64
	// PPartial is the per-frame probability of a partial write followed
	// by a severed connection (the receiver sees a truncated stream).
	PPartial float64
	// PDelay is the per-frame probability the write sleeps Delay first.
	PDelay float64
	// Delay is the injected latency for delayed frames.
	Delay time.Duration

	// DropAt severs the connection at exactly these frame sites.
	DropAt []NetFaultSite
	// PartialAt partially writes exactly these frame sites.
	PartialAt []NetFaultSite

	// Kill enables the rank-kill schedule (off in the zero value, so a
	// drops-only config cannot kill rank 0 by accident).
	Kill bool
	// KillRank names the rank that dies mid-run when Kill is set.
	KillRank int
	// KillAtSend is the global data-send count at which KillRank dies:
	// its KillAtSend-th send (0-based) never completes.
	KillAtSend uint64

	// MaxFaults, when > 0, caps the total drop+partial incidents the
	// schedule fires (kills are not counted), so probabilistic runs
	// cannot degenerate into a peer-loss storm.
	MaxFaults int64
}

// NetChaosStats counts fired injections by class.
type NetChaosStats struct {
	// Frames is every injection decision taken (one per first write of a
	// data frame).
	Frames int64
	// Drops is fired connection drops.
	Drops int64
	// Partials is fired partial writes.
	Partials int64
	// Delays is fired frame delays.
	Delays int64
	// Kills is fired rank kills (0 or 1 per schedule).
	Kills int64
}

// NetChaos is a seeded mpi.NetFaultInjector. Safe for concurrent use by
// every sender goroutine of a rank; share one instance across the ranks
// of an in-process RunNetErrs harness to aggregate its counters.
type NetChaos struct {
	cfg      NetChaosConfig
	dropAt   map[NetFaultSite]bool
	partial  map[NetFaultSite]bool
	frames   atomic.Int64
	drops    atomic.Int64
	partials atomic.Int64
	delays   atomic.Int64
	kills    atomic.Int64
}

// NewNetChaos builds the injector for one schedule.
func NewNetChaos(cfg NetChaosConfig) *NetChaos {
	nc := &NetChaos{cfg: cfg}
	if len(cfg.DropAt) > 0 {
		nc.dropAt = make(map[NetFaultSite]bool, len(cfg.DropAt))
		for _, s := range cfg.DropAt {
			nc.dropAt[s] = true
		}
	}
	if len(cfg.PartialAt) > 0 {
		nc.partial = make(map[NetFaultSite]bool, len(cfg.PartialAt))
		for _, s := range cfg.PartialAt {
			nc.partial[s] = true
		}
	}
	return nc
}

// Stats returns a snapshot of the fired-injection counters.
func (nc *NetChaos) Stats() NetChaosStats {
	return NetChaosStats{
		Frames:   nc.frames.Load(),
		Drops:    nc.drops.Load(),
		Partials: nc.partials.Load(),
		Delays:   nc.delays.Load(),
		Kills:    nc.kills.Load(),
	}
}

// SendFault implements mpi.NetFaultInjector: the verdict for the seq-th
// frame src sends to dst, with nsent the sender's global data-send
// counter. Kill is checked first (a dead rank drops nothing), then the
// explicit site lists, then the seeded probabilistic schedule.
func (nc *NetChaos) SendFault(src, dst int, seq, nsent uint64) (mpi.NetFaultAction, time.Duration) {
	nc.frames.Add(1)
	if nc.cfg.Kill && src == nc.cfg.KillRank && nsent >= nc.cfg.KillAtSend {
		nc.kills.Add(1)
		return mpi.NetFaultKill, 0
	}
	site := NetFaultSite{Src: src, Dst: dst, Seq: seq}
	if nc.dropAt[site] {
		if nc.budgetOK() {
			nc.drops.Add(1)
			return mpi.NetFaultDropConn, 0
		}
		return mpi.NetFaultNone, 0
	}
	if nc.partial[site] {
		if nc.budgetOK() {
			nc.partials.Add(1)
			return mpi.NetFaultPartialWrite, 0
		}
		return mpi.NetFaultNone, 0
	}
	if nc.cfg.PDrop == 0 && nc.cfg.PPartial == 0 && nc.cfg.PDelay == 0 {
		return mpi.NetFaultNone, 0
	}
	// 53 uniform bits -> [0, 1), the same construction as the store
	// schedule, hashed over the frame coordinates.
	h := netChaosHash(nc.cfg.Seed, uint64(src), uint64(dst), seq)
	u := float64(h>>11) / (1 << 53)
	if u < nc.cfg.PDrop {
		if nc.budgetOK() {
			nc.drops.Add(1)
			return mpi.NetFaultDropConn, 0
		}
		return mpi.NetFaultNone, 0
	}
	u -= nc.cfg.PDrop
	if u < nc.cfg.PPartial {
		if nc.budgetOK() {
			nc.partials.Add(1)
			return mpi.NetFaultPartialWrite, 0
		}
		return mpi.NetFaultNone, 0
	}
	u -= nc.cfg.PPartial
	if u < nc.cfg.PDelay {
		nc.delays.Add(1)
		return mpi.NetFaultDelay, nc.cfg.Delay
	}
	return mpi.NetFaultNone, 0
}

// budgetOK consumes one unit of the MaxFaults budget (unlimited when the
// cap is zero or negative).
func (nc *NetChaos) budgetOK() bool {
	if nc.cfg.MaxFaults <= 0 {
		return true
	}
	if nc.drops.Load()+nc.partials.Load() >= nc.cfg.MaxFaults {
		return false
	}
	return true
}

// netChaosHash mixes (seed, src, dst, seq) into a uniform 64-bit value:
// FNV-1a over the words with a splitmix64-style finalizer, the same
// construction pfs.HashSite uses for read sites.
func netChaosHash(seed, a, b, c uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range [4]uint64{seed, a, b, c} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
